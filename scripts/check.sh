#!/bin/sh
# Pre-merge gate: vet, build, full tests, the race detector over the
# internal packages, a forced-parallel race pass over the experiment
# worker pool, and a one-iteration compile-and-run smoke over every
# benchmark. Mirrors `make check` for environments without make.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test ./...
go test -race ./internal/...
GOMAXPROCS=2 go test -race ./internal/experiment
GOMAXPROCS=2 go test -race ./internal/net
GOMAXPROCS=2 go test -race ./internal/fault
go test -run '^$' -bench . -benchtime=1x ./...
# Allocation regression gate: the steady-state packet loop must stay
# at zero heap allocations per packet (see alloc_test.go).
go test -run 'TestAllocsPerPacket|TestNullPoolByteIdentical' -count=1 .
# Observability smoke: run a short traced scenario and validate that
# the Chrome trace and the metrics JSON both parse.
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/idiosim -scenario scenarios/mixed_nfs.json \
    -trace "$obsdir/trace.json" -trace-sample 16 \
    -json "$obsdir/results.json" > /dev/null
go run ./cmd/obscheck "$obsdir/trace.json" "$obsdir/results.json"
# Fabric smoke: the end-to-end RPC sweep must run, and its table must
# be byte-identical between serial and parallel cell execution.
go run ./cmd/idiosim -exp rpc -quick -j 2 > "$obsdir/rpc.txt"
go run ./cmd/idiosim -exp rpc -quick -j 1 | cmp - "$obsdir/rpc.txt"
go run ./cmd/idiosim -scenario scenarios/rpc_closed_loop.json > /dev/null
# Chaos smoke: the scripted fault timeline must run under both serial
# and parallel cell execution with byte-identical tables, and the
# chaos scenario's drained run must hold the pool-leak gate: a leak
# surfaces as the "pkt pool: outstanding=" line, absent when healthy.
go run ./cmd/idiosim -exp chaos -quick -j 2 > "$obsdir/chaos.txt"
go run ./cmd/idiosim -exp chaos -quick -j 1 | cmp - "$obsdir/chaos.txt"
go run ./cmd/idiosim -scenario scenarios/chaos_recovery.json > "$obsdir/chaos_scenario.txt"
if grep -q "pkt pool: outstanding=" "$obsdir/chaos_scenario.txt"; then
    echo "chaos scenario leaked packets" >&2
    exit 1
fi
# Pool-leak gate after the chaos smokes: the lossy-fabric regression
# test asserts PktPool.Outstanding == 0 with every resilience path hit.
go test -run 'TestLossyFabricNoPoolLeak|TestClusterAllocsPerRequest' -count=1 .
