#!/bin/sh
# Benchmark baseline runner: benchmarks the figure harness (repo root),
# the event kernel (internal/sim), the cache hierarchy (internal/hier),
# the network fabric (internal/net) and the compact flow table
# (internal/flow) with allocation stats, then
# condenses the raw stream into BENCH_sim.json (benchmark name ->
# averaged ns/op, B/op, allocs/op and custom metrics) via cmd/benchjson.
# Each run also appends one labelled line to BENCH_history.jsonl, so
# successive PRs accumulate a perf timeline next to the baseline.
#
#   COUNT=5 OUT=after.json scripts/bench.sh      # override repetitions/output
#   LABEL=pr7 scripts/bench.sh                   # override the history label
#
# The raw `go test` output is kept next to the JSON for eyeballing.
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_sim.json}"
RAW="${RAW:-${OUT%.json}.txt}"
HISTORY="${HISTORY:-BENCH_history.jsonl}"
LABEL="${LABEL:-pr$(git rev-list --count HEAD 2>/dev/null || echo 0)-$(git rev-parse --short HEAD 2>/dev/null || echo unversioned)}"

go test -run '^$' -bench . -benchmem -count "$COUNT" . ./internal/sim ./internal/hier ./internal/net ./internal/flow | tee "$RAW"
go run ./cmd/benchjson -o "$OUT" -history "$HISTORY" -label "$LABEL" "$RAW"
