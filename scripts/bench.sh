#!/bin/sh
# Benchmark baseline runner: benchmarks the figure harness (repo root),
# the event kernel (internal/sim) and the cache hierarchy
# (internal/hier) with allocation stats, then condenses the raw stream
# into BENCH_sim.json (benchmark name -> averaged ns/op, B/op,
# allocs/op and custom metrics) via cmd/benchjson.
#
#   COUNT=5 OUT=after.json scripts/bench.sh      # override repetitions/output
#
# The raw `go test` output is kept next to the JSON for eyeballing.
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_sim.json}"
RAW="${RAW:-${OUT%.json}.txt}"

go test -run '^$' -bench . -benchmem -count "$COUNT" . ./internal/sim ./internal/hier | tee "$RAW"
go run ./cmd/benchjson -o "$OUT" "$RAW"
