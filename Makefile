GO ?= go

.PHONY: check vet build test race bench-smoke bench figures

# check is the full pre-merge gate: vet, build, tests, the race
# detector over the internal packages (including a forced-parallel
# pass over the experiment worker pool), and a one-iteration smoke
# over every benchmark.
check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...
	GOMAXPROCS=2 $(GO) test -race ./internal/experiment
	GOMAXPROCS=2 $(GO) test -race ./internal/net

# bench-smoke compiles and runs every benchmark for a single iteration
# so a broken benchmark fails CI without paying full measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# bench records a measured baseline (3 repetitions, alloc stats) into
# BENCH_sim.json via scripts/bench.sh.
bench:
	./scripts/bench.sh

# figures regenerates every experiment table (reduced-size, CI-friendly).
figures:
	$(GO) run ./cmd/idiosim -exp all -quick
