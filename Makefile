GO ?= go

.PHONY: check vet build test race figures

# check is the full pre-merge gate: vet, build, tests, and the race
# detector over the internal packages.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# figures regenerates every experiment table (reduced-size, CI-friendly).
figures:
	$(GO) run ./cmd/idiosim -exp all -quick
