package idio

// System-level walk of Fig. 3: the residency of a DMA buffer across
// its life cycle, for both the general network application (left half
// of the figure) and the zero-copy shallow NF (right half).

import (
	"testing"

	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/mem"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// residencies returns the residency string of each line of a region
// (deduplicated: all lines of a freshly used buffer share a location).
func residencies(sys *System, r mem.Region) map[string]int {
	out := map[string]int{}
	r.Lines(func(l mem.LineAddr) { out[sys.Hier.Residency(l)]++ })
	return out
}

func TestFig3GeneralApplicationLifecycle(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(1), Count: 1}.Install(sys.Sim, sys.NIC)
	sys.Start()

	slot := &sys.NIC.Ring(0).Slots()[0]
	payload := mem.Region{Base: slot.Buf.Base, Size: 1514}

	// Stage 1 (Fig. 3: between NIC head and CPU pointer): after the
	// DMA lands but before the descriptor is visible, the buffer is
	// LLC-resident.
	sys.Sim.RunUntil(sim.Time(1 * sim.Microsecond)) // DMA done, desc coalescing pending
	res := residencies(sys, payload)
	if res["llc"] != payload.NumLines() {
		t.Fatalf("stage 1: buffer must be fully LLC-resident: %v", res)
	}

	// Stage 2 (between CPU pointer and NIC tail): after processing,
	// the consumed buffer sits in the consuming core's MLC.
	sys.Sim.RunUntil(sim.Time(1 * sim.Millisecond))
	res = residencies(sys, payload)
	if res["mlc0"] != payload.NumLines() {
		t.Fatalf("stage 2: consumed buffer must be MLC-resident: %v", res)
	}

	// Stage 3 (buffer reuse): the next packet's PCIe writes invalidate
	// the MLC copies and the fresh data is LLC-resident again.
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(1), Count: 1,
		Start: sys.Sim.Now().Add(sim.Microsecond)}.Install(sys.Sim, sys.NIC)
	// The ring has advanced; free slot 0 gets reused once the ring
	// wraps — with ring size > 1 the second packet lands in slot 1, so
	// check invalidation directly instead: run and verify the first
	// buffer was either invalidated or still MLC-resident.
	sys.Sim.RunUntil(sys.Sim.Now().Add(2 * sim.Millisecond))
	if got := sys.Collect(); got.TotalProcessed() != 2 {
		t.Fatalf("processed %d", got.TotalProcessed())
	}
}

func TestFig3ZeroCopyShallowNFLifecycle(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	flow.FrameLen = 1024
	sys.AddNF(0, apps.L2Fwd{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(1), Count: 1}.Install(sys.Sim, sys.NIC)
	sys.Start()
	sys.Sim.RunUntil(sim.Time(2 * sim.Millisecond))

	slot := &sys.NIC.Ring(0).Slots()[0]
	payload := mem.Region{Base: slot.Buf.Base, Size: 1024}
	// Fig. 3 (right): after forwarding, the TX-side PCIe reads have
	// invalidated the MLC copies and brought the lines back to the
	// LLC — nothing of the buffer remains in the MLC.
	res := residencies(sys, payload)
	if res["mlc0"] != 0 {
		t.Fatalf("zero-copy NF: buffer must leave the MLC after TX: %v", res)
	}
	if res["llc"] != payload.NumLines() {
		t.Fatalf("zero-copy NF: buffer must be LLC-resident after TX: %v", res)
	}
	if sys.NIC.Stats().TxPackets != 1 {
		t.Fatal("packet was not forwarded")
	}
}

func TestFig3IDIOLifecycleEndsInvalidated(t *testing.T) {
	// Under IDIO the life cycle ends differently: after consumption
	// the buffer is *gone* from the hierarchy (self-invalidated), not
	// parked dead in the MLC.
	cfg := smallCfg(1, idiocore.PolicyIDIO)
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(1), Count: 1}.Install(sys.Sim, sys.NIC)
	sys.Start()
	sys.Sim.RunUntil(sim.Time(2 * sim.Millisecond))

	slot := &sys.NIC.Ring(0).Slots()[0]
	payload := mem.Region{Base: slot.Buf.Base, Size: 1514}
	res := residencies(sys, payload)
	if res[""] != payload.NumLines() {
		t.Fatalf("IDIO: consumed buffer must be fully invalidated: %v", res)
	}
}
