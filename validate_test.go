package idio

import (
	"errors"
	"strings"
	"testing"

	idiocore "idio/internal/core"
	"idio/internal/fault"
	"idio/internal/sim"
)

func TestValidateAcceptsDefaults(t *testing.T) {
	for _, cores := range []int{1, 2, 8} {
		if err := DefaultConfig(cores).Validate(); err != nil {
			t.Errorf("DefaultConfig(%d): %v", cores, err)
		}
	}
	if err := Gem5Config().Validate(); err != nil {
		t.Errorf("Gem5Config: %v", err)
	}
	cfg := smallCfg(2, idiocore.PolicyIDIO)
	if err := cfg.Validate(); err != nil {
		t.Errorf("smallCfg: %v", err)
	}
}

// TestValidateRejects covers every invalid-configuration class the
// subsystem constructors would otherwise panic on, asserting Validate
// reports it as an error naming the offending field.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"no cores", func(c *Config) { c.Hier.NumCores = 0 }, "Hier.NumCores"},
		{"zero clock", func(c *Config) { c.Hier.Clock = sim.Clock{} }, "Hier.Clock"},
		{"bad L1 assoc", func(c *Config) { c.Hier.L1Assoc = 0 }, "Hier.L1Size"},
		{"L1 not divisible", func(c *Config) { c.Hier.L1Size = 100 }, "Hier.L1Size"},
		{"MLC sets not pow2", func(c *Config) { c.Hier.MLCSize = 3 * (96 << 10) }, "Hier.MLCSize"},
		{"per-core MLC bad", func(c *Config) { c.Hier.MLCSizePerCore = []int{100} }, "Hier.MLCSizePerCore[0]"},
		{"LLC assoc over 64", func(c *Config) { c.Hier.LLCAssoc = 65 }, "Hier.LLCSize"},
		{"DDIO ways zero", func(c *Config) { c.Hier.DDIOWays = 0 }, "Hier.DDIOWays"},
		{"DDIO ways over assoc", func(c *Config) { c.Hier.DDIOWays = c.Hier.LLCAssoc + 1 }, "Hier.DDIOWays"},
		{"dir assoc", func(c *Config) { c.Hier.DirAssoc = 0 }, "Hier.DirAssoc"},
		{"dir entries", func(c *Config) { c.Hier.DirEntriesPerCore = 0 }, "Hier.DirEntriesPerCore"},
		{"dram bandwidth", func(c *Config) { c.Hier.DRAM.BytesPerSecond = 0 }, "Hier.DRAM.BytesPerSecond"},
		{"dram row bytes", func(c *Config) { c.Hier.DRAM.RowBytes = 32 }, "Hier.DRAM.RowBytes"},
		{"nic queues", func(c *Config) { c.NIC.NumQueues = 0 }, "NIC.NumQueues"},
		{"nic ring size", func(c *Config) { c.NIC.RingSize = 0 }, "NIC.RingSize"},
		{"nic line rate", func(c *Config) { c.NIC.LineRateBps = 0 }, "NIC.LineRateBps"},
		{"cpu batch", func(c *Config) { c.CPU.BatchSize = 0 }, "CPU.BatchSize"},
		{"cpu poll interval", func(c *Config) { c.CPU.PollInterval = 0 }, "CPU.PollInterval"},
		{"classifier cores high", func(c *Config) { c.Classifier.NumCores = 64 }, "Classifier.NumCores"},
		{"classifier cores mismatch", func(c *Config) { c.Classifier.NumCores = 3 }, "Classifier.NumCores"},
		{"classifier window", func(c *Config) { c.Classifier.Window = 0 }, "Classifier.Window"},
		{"controller cores", func(c *Config) { c.Controller.NumCores = 0 }, "Controller.NumCores"},
		{"controller avg window", func(c *Config) { c.Controller.AvgWindow = 0 }, "Controller.AvgWindow"},
		{"controller sample", func(c *Config) { c.Controller.SampleInterval = 0 }, "Controller.SampleInterval"},
		{"prefetcher depth", func(c *Config) { c.Prefetcher.QueueDepth = 0 }, "Prefetcher.QueueDepth"},
		{"prefetcher interval", func(c *Config) { c.Prefetcher.IssueInterval = 0 }, "Prefetcher.IssueInterval"},
		{"waytuner bounds", func(c *Config) {
			c.DynamicDDIOWays = &idiocore.WayTunerConfig{MinWays: 3, MaxWays: 2, SampleInterval: sim.Microsecond}
		}, "DynamicDDIOWays"},
		{"waytuner over assoc", func(c *Config) {
			c.DynamicDDIOWays = &idiocore.WayTunerConfig{MinWays: 1, MaxWays: 99, SampleInterval: sim.Microsecond}
		}, "DynamicDDIOWays.MaxWays"},
		{"negative ports", func(c *Config) { c.NumPorts = -1 }, "NumPorts"},
		{"fault prob", func(c *Config) {
			c.Faults = &fault.Config{PCIe: &fault.PCIeConfig{CorruptProb: 2}}
		}, "Faults"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(2)
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.field)
		}
		var cerr *ConfigError
		if !errors.As(err, &cerr) {
			t.Errorf("%s: error is not a *ConfigError chain", tc.name)
		}
	}
}

// TestValidateJoinsAllProblems: one call reports every defect, not
// just the first.
func TestValidateJoinsAllProblems(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.NIC.NumQueues = 0
	cfg.CPU.BatchSize = 0
	err := cfg.Validate()
	if err == nil {
		t.Fatal("accepted")
	}
	for _, want := range []string{"NIC.NumQueues", "CPU.BatchSize"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %s: %q", want, err)
		}
	}
}

// TestNewSystemE returns errors instead of panicking, while NewSystem
// keeps the historical panic for compatibility.
func TestNewSystemE(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Hier.DDIOWays = 0
	sys, err := NewSystemE(cfg)
	if err == nil || sys != nil {
		t.Fatalf("NewSystemE = (%v, %v), want nil system and error", sys, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewSystem did not panic on an invalid config")
		}
	}()
	NewSystem(cfg)
}

func TestNewSystemEValid(t *testing.T) {
	sys, err := NewSystemE(smallCfg(1, idiocore.PolicyDDIO))
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil || sys.NIC == nil || sys.Hier == nil {
		t.Fatal("system not wired")
	}
}
