package idio

import (
	"fmt"

	fnet "idio/internal/net"
	"idio/internal/pkt"
	"idio/internal/sim"
	"idio/internal/stats"
	"idio/internal/traffic"
)

// ServerIP is the DUT's address on the fabric (DefaultFlow's Dst).
var ServerIP = pkt.IPv4{10, 0, 0, 1}

// ClientIP returns client host i's fabric address. The 10.0.2/24
// range is disjoint from DefaultFlow's 10.0.1/24 sources, so direct
// injection and fabric traffic can coexist without tuple collisions.
func ClientIP(i int) pkt.IPv4 { return pkt.IPv4{10, 0, 2, byte(i + 1)} }

// Cluster is a multi-host topology on one simulator: N lightweight
// client hosts reaching one fully-modelled DUT server through an
// output-queued switch. Requests travel client → uplink → switch →
// server downlink → DUT NIC; the DUT's NF processes them and its TX
// path hands completions to the wire hook, which echoes the frame
// (addresses swapped) back through the switch to the owning client.
//
//	client0 ──up──▶          ┌─▶ down ──▶ client0
//	client1 ──up──▶  switch ─┼─▶ down ──▶ client1
//	   ...           ▲    │  └─▶ ...
//	                 │    └─ srv.down ─▶ [DUT NIC → cores → TX]
//	                 └────── srv.up ◀────────────┘
type Cluster struct {
	Sim *sim.Simulator
	// DUT is the server host: the full System (hierarchy, NIC, IDIO).
	DUT *System
	// Switch connects every host; routes are keyed by destination IP.
	Switch *fnet.Switch
	// Clients holds the RPC clients installed via AddRPCClient, in
	// installation order (nil-free; index is NOT the client slot).
	Clients []*fnet.Client
	// ClientUp[i] carries client slot i's traffic toward the switch;
	// ClientDown[i] is non-nil once slot i has an RPC client.
	ClientUp   []*fnet.Link
	ClientDown []*fnet.Link
	// ServerUp carries DUT responses to the switch; ServerDown carries
	// switch traffic into the DUT NIC.
	ServerUp   *fnet.Link
	ServerDown *fnet.Link
	// Hist aggregates end-to-end RPC latency across all clients.
	Hist *stats.Histogram

	cfg     ClusterConfig
	started bool
}

// NewCluster wires the topology: the DUT server (full System) and
// nClients client slots, all on one simulator. Client slots start
// empty — attach an RPC client with AddRPCClient, or feed a slot's
// uplink directly via ClientIngress (generator traffic through the
// fabric). The DUT's port-0 TX path is wired to echo processed frames
// back through the switch.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sm := sim.New()
	dut, err := NewHostE(sm, cfg.Host)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		Sim:    sm,
		DUT:    dut,
		Switch: fnet.NewSwitch("sw0"),
		Hist:   stats.NewHistogram(5),
		cfg:    cfg,
	}
	o := dut.Observe()
	cl.Switch.SetObserver(o)
	reg := o.Registry()

	// Server downlink: switch → DUT NIC (port 0 receives like a
	// generator would — *nic.NIC satisfies fnet.Endpoint).
	down := cfg.ServerLink
	down.Name = "srv.down"
	cl.ServerDown = fnet.NewLink(down, dut.NIC)
	cl.ServerDown.SetObserver(o)
	cl.ServerDown.RegisterMetrics(reg, "fabric.srv.down.")
	cl.Switch.Route(ServerIP, cl.Switch.AddPort(cl.ServerDown))

	// Server uplink: DUT TX → switch. The wire hook echoes each
	// transmitted frame with Ethernet/IP/UDP addresses swapped, so the
	// switch routes it back to the requesting client.
	up := cfg.ServerLink
	up.Name = "srv.up"
	cl.ServerUp = fnet.NewLink(up, cl.Switch)
	cl.ServerUp.SetObserver(o)
	cl.ServerUp.RegisterMetrics(reg, "fabric.srv.up.")
	// The echo response is drawn from the host pool — usually the very
	// request packet just released by the slot free in this same event,
	// so the fabric's steady state recycles one packet per in-flight
	// request and allocates nothing.
	dut.NIC.SetWire(func(s *sim.Simulator, p *pkt.Packet) {
		// Capture the request's identity before Get: the pool may hand
		// back p itself (it was released by the slot free moments ago in
		// this same event), and Get resets the recycled packet's Seq.
		seq := p.Seq
		r := dut.PktPool.Get(len(p.Frame))
		pkt.EchoInto(r, p)
		r.Seq = seq
		cl.ServerUp.Receive(s, r)
	})

	// Client uplinks: slot i → switch. Downlinks are created lazily by
	// AddRPCClient (their endpoint is the client itself).
	cl.ClientUp = make([]*fnet.Link, cfg.Clients)
	cl.ClientDown = make([]*fnet.Link, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		lc := cfg.ClientLink
		lc.Name = fmt.Sprintf("c%d.up", i)
		cl.ClientUp[i] = fnet.NewLink(lc, cl.Switch)
		cl.ClientUp[i].SetObserver(o)
		// Clients and generators feeding this uplink draw their request
		// packets from the host pool (central leak accounting).
		cl.ClientUp[i].SetPacketPool(dut.PktPool)
		cl.ClientUp[i].RegisterMetrics(reg, fmt.Sprintf("fabric.c%d.up.", i))
	}
	cl.Switch.RegisterMetrics(reg, "fabric.switch.")

	// Fabric links are fault targets; attach in slot order so the
	// injector's victim choice is deterministic.
	if dut.Faults != nil {
		dut.Faults.AttachLink(cl.ServerDown)
		dut.Faults.AttachLink(cl.ServerUp)
		for _, l := range cl.ClientUp {
			dut.Faults.AttachLink(l)
		}
	}
	return cl, nil
}

// ClientIngress returns slot i's uplink as a traffic.Receiver, so any
// internal/traffic generator can be Installed onto the fabric instead
// of injecting directly into the DUT NIC: generator → uplink → switch
// → server downlink → NIC.
func (cl *Cluster) ClientIngress(i int) traffic.Receiver { return cl.ClientUp[i] }

// ClientFlow returns the canonical request flow for client slot i
// targeting the NF on the given DUT core: source is the client's own
// fabric address (responses route back by it), destination the DUT.
func (cl *Cluster) ClientFlow(i, core int) traffic.Flow {
	return traffic.Flow{
		Src: ClientIP(i), Dst: ServerIP,
		SrcPort: uint16(7000 + i), DstPort: uint16(9000 + core),
		FrameLen: pkt.MTUFrameLen,
	}
}

// AddRPCClient installs an RPC client on slot i whose requests are
// served by the NF on the given DUT core: it builds the slot's
// downlink, routes the client's address to it, pins the flow to the
// core with an EP Flow Director rule, and shares the cluster-wide
// latency histogram. A zero ccfg.Flow defaults to ClientFlow(i, core).
func (cl *Cluster) AddRPCClient(i, core int, ccfg fnet.ClientConfig) *fnet.Client {
	if cl.ClientDown[i] != nil {
		panic(fmt.Sprintf("idio: client slot %d already has an RPC client", i))
	}
	if ccfg.Flow == (traffic.Flow{}) {
		ccfg.Flow = cl.ClientFlow(i, core)
	}
	if ccfg.Hist == nil {
		ccfg.Hist = cl.Hist
	}
	c := fnet.NewClient(ccfg, cl.ClientUp[i])
	o := cl.DUT.Observe()
	reg := o.Registry()

	lc := cl.cfg.ClientLink
	lc.Name = fmt.Sprintf("c%d.down", i)
	cl.ClientDown[i] = fnet.NewLink(lc, c)
	cl.ClientDown[i].SetObserver(o)
	cl.ClientDown[i].RegisterMetrics(reg, fmt.Sprintf("fabric.c%d.down.", i))
	cl.Switch.Route(ccfg.Flow.Src, cl.Switch.AddPort(cl.ClientDown[i]))
	if cl.DUT.Faults != nil {
		cl.DUT.Faults.AttachLink(cl.ClientDown[i])
	}

	cl.DUT.FlowDir.AddEPRule(ccfg.Flow.Tuple(), core)
	c.RegisterMetrics(reg, fmt.Sprintf("rpc.c%d.", i))
	cl.Clients = append(cl.Clients, c)
	return c
}

// Start launches the DUT (cores, controller, injectors) and every
// installed RPC client. Calling it more than once is a no-op.
func (cl *Cluster) Start() {
	if cl.started {
		return
	}
	cl.started = true
	cl.DUT.Start()
	for _, c := range cl.Clients {
		c.Start(cl.Sim)
	}
}

// Idle reports whether the whole topology has drained: DUT rings
// empty, no packet queued/serializing/propagating on any link, and
// every RPC client out of budget with no request awaiting a response
// or timeout.
func (cl *Cluster) Idle() bool {
	if !cl.DUT.idle() {
		return false
	}
	for _, l := range cl.links() {
		if l.InFlight() != 0 {
			return false
		}
	}
	for _, c := range cl.Clients {
		if !c.Done() {
			return false
		}
	}
	return true
}

// links returns every fabric link in slot order (nil downlinks of
// empty client slots are skipped).
func (cl *Cluster) links() []*fnet.Link {
	ls := []*fnet.Link{cl.ServerDown, cl.ServerUp}
	for _, l := range cl.ClientUp {
		ls = append(ls, l)
	}
	for _, l := range cl.ClientDown {
		if l != nil {
			ls = append(ls, l)
		}
	}
	return ls
}

// Run starts the cluster (if needed) and executes until the horizon.
func (cl *Cluster) Run(horizon sim.Duration) Results {
	cl.Start()
	cl.Sim.RunUntil(sim.Time(horizon))
	return cl.Collect()
}

// RunUntilIdle executes until the topology drains (all clients done,
// fabric and rings empty), bounded by the horizon — the natural run
// mode for a fixed request budget.
func (cl *Cluster) RunUntilIdle(horizon sim.Duration) Results {
	cl.Start()
	// The DUT's polling loops never terminate, so run in slices and
	// stop when the topology has drained (see System.RunUntilIdle).
	step := 100 * sim.Microsecond
	for t := sim.Duration(0); t < horizon; t += step {
		cl.Sim.RunUntil(sim.Time(t + step))
		if cl.Sim.Err() != nil || cl.Idle() {
			break
		}
	}
	return cl.Collect()
}

// Err reports a structured abort (watchdog trip) from the last run.
func (cl *Cluster) Err() error { return cl.Sim.Err() }

// Collect snapshots the DUT's results and attaches the fabric and RPC
// summaries.
func (cl *Cluster) Collect() Results {
	r := cl.DUT.Collect()
	f := &FabricResults{Switch: cl.Switch.Stats()}
	for _, l := range cl.links() {
		f.Links = append(f.Links, LinkResult{Name: l.Name(), Stats: l.Stats()})
	}
	r.Fabric = f
	if len(cl.Clients) > 0 {
		rpc := &RPCResults{}
		var rxBytes uint64
		var first, last sim.Time
		for i, c := range cl.Clients {
			st := c.Stats()
			rpc.Issued += st.Issued
			rpc.Responses += st.Responses
			rpc.Timeouts += st.Timeouts
			rpc.Late += st.Late
			rpc.Retries += st.Retries
			rpc.Hedges += st.Hedges
			rpc.Failed += st.Failed
			rxBytes += c.RxBytes()
			if fs := c.FirstSend(); i == 0 || fs < first {
				first = fs
			}
			if lr := c.LastResp(); lr > last {
				last = lr
			}
		}
		rpc.GoodputBps = fnet.GoodputBps(rxBytes, first, last)
		if cl.Hist.Count() > 0 {
			rpc.P50 = cl.Hist.Quantile(0.50)
			rpc.P99 = cl.Hist.Quantile(0.99)
			rpc.P999 = cl.Hist.Quantile(0.999)
		}
		r.RPC = rpc
	}
	return r
}
