package idio

import (
	"fmt"

	"idio/internal/fault"
	fnet "idio/internal/net"
	"idio/internal/nic"
	"idio/internal/pkt"
	"idio/internal/qos"
	"idio/internal/sim"
	"idio/internal/stats"
	"idio/internal/traffic"
)

// ServerIP is the DUT's address on the fabric (DefaultFlow's Dst).
var ServerIP = pkt.IPv4{10, 0, 0, 1}

// ClientIP returns client host i's fabric address. The 10.0.2/24
// range is disjoint from DefaultFlow's 10.0.1/24 sources, so direct
// injection and fabric traffic can coexist without tuple collisions.
func ClientIP(i int) pkt.IPv4 { return pkt.IPv4{10, 0, 2, byte(i + 1)} }

// Cluster is a multi-host topology: N lightweight client hosts
// reaching one fully-modelled DUT server through an output-queued
// switch. Requests travel client → uplink → switch → server downlink
// → DUT NIC; the DUT's NF processes them and its TX path hands
// completions to the wire hook, which echoes the frame (addresses
// swapped) back through the switch to the owning client.
//
//	client0 ──up──▶          ┌─▶ down ──▶ client0
//	client1 ──up──▶  switch ─┼─▶ down ──▶ client1
//	   ...           ▲    │  └─▶ ...
//	                 │    └─ srv.down ─▶ [DUT NIC → cores → TX]
//	                 └────── srv.up ◀────────────┘
//
// With ClusterConfig.Shards <= 1 every host shares one simulator —
// the exact historical run. With Shards >= 2 the DUT, the switch and
// groups of clients each own a private event domain advancing on its
// own goroutine, synchronized conservatively at the links (the only
// legal cross-domain edges); outputs stay byte-identical.
type Cluster struct {
	// Sim is the DUT's simulator — the only simulator when unsharded.
	Sim *sim.Simulator
	// DUT is the server host: the full System (hierarchy, NIC, IDIO).
	DUT *System
	// Switch connects every host; routes are keyed by destination IP.
	Switch *fnet.Switch
	// Clients holds the RPC clients installed via AddRPCClient, in
	// installation order (nil-free; index is NOT the client slot).
	Clients []*fnet.Client
	// ChurnClients holds the flow-churn clients installed via
	// AddChurnClient, in installation order.
	ChurnClients []*fnet.ChurnClient
	// ClientUp[i] carries client slot i's traffic toward the switch;
	// ClientDown[i] is non-nil once slot i has an RPC client.
	ClientUp   []*fnet.Link
	ClientDown []*fnet.Link
	// ServerUp carries DUT responses to the switch; ServerDown carries
	// switch traffic into the DUT NIC.
	ServerUp   *fnet.Link
	ServerDown *fnet.Link
	// Hist aggregates end-to-end RPC latency across all clients. In a
	// sharded cluster it is rebuilt at Collect time by merging the
	// per-client histograms (bucket addition — the same final state
	// shared recording would have produced).
	Hist *stats.Histogram

	cfg     ClusterConfig
	started bool

	// qosMap is the cluster-wide DSCP→class map when ClusterConfig.QoS
	// is set (nil otherwise); clientClass records each RPC client's
	// service class (parallel to Clients) for per-class Collect.
	qosMap      *qos.Map
	clientClass []qos.Class

	// Sharded-mode state; engine is nil when Shards <= 1.
	engine       *sim.Engine
	doms         []*clusterDomain // [0]=dut, [1]=switch, [2..]=client groups
	clientDomOf  []int            // client slot -> domain index
	clientSlots  []int            // Clients[j] -> slot (parallel to Clients)
	churnSlots   []int            // ChurnClients[j] -> slot
	faultLinkDom []int            // fault AttachLink order -> owning domain
	outboxes     []*fnet.Outbox
	flushScratch []fnet.XEntry
}

// clusterDomain is one event domain of a sharded cluster: a private
// simulator, a private packet pool (pkt.Pool is deliberately not
// concurrency-safe) and the outbox collecting its cross-domain
// handoffs between barriers.
type clusterDomain struct {
	name string
	sm   *sim.Simulator
	pool *pkt.Pool
	out  *fnet.Outbox
}

// runStep is the until-idle checkpoint period, shared by the
// single-simulator slicing loop and the sharded epoch engine so both
// stop at identical instants (see System.RunUntilIdle).
const runStep = 100 * sim.Microsecond

// NewCluster wires the topology: the DUT server (full System) and
// nClients client slots. Client slots start empty — attach an RPC
// client with AddRPCClient, or feed a slot's uplink directly via
// ClientIngress (generator traffic through the fabric; install on
// ClientSim(i)). The DUT's port-0 TX path is wired to echo processed
// frames back through the switch.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// A cluster-level QoS policy flows down into the host (NIC filter
	// table, placement policy) unless the host already carries its own.
	if cfg.QoS != nil && cfg.Host.QoS == nil {
		cfg.Host.QoS = cfg.QoS
	}
	sm := sim.New()
	dut, err := NewHostE(sm, cfg.Host)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		Sim:    sm,
		DUT:    dut,
		Switch: fnet.NewSwitch("sw0"),
		Hist:   stats.NewHistogram(5),
		cfg:    cfg,
	}
	if cfg.QoS != nil {
		qm, err := cfg.QoS.BuildMap()
		if err != nil {
			return nil, err
		}
		cl.qosMap = qm
		// Arm before any port attaches: every switch egress — the server
		// downlink now, client downlinks as AddRPCClient creates them —
		// replaces its FIFO with the scheduled per-class queues.
		cl.Switch.ArmQoS(cfg.QoS, qm)
	}
	if cfg.Shards > 1 {
		cl.buildDomains()
	}
	o := dut.Observe()
	cl.Switch.SetObserver(o)
	reg := o.Registry()

	// Server downlink: switch → DUT NIC (port 0 receives like a
	// generator would — *nic.NIC satisfies fnet.Endpoint). The switch
	// domain owns it; the DUT domain is the delivery side.
	down := cfg.ServerLink
	down.Name = "srv.down"
	cl.ServerDown = fnet.NewLink(down, dut.NIC)
	cl.ServerDown.SetObserver(o)
	// AddPort arms the link too (idempotently), but only after metrics
	// registration below — arm here so the per-class keys land in the
	// registry alongside the link's own.
	if cl.qosMap != nil {
		cl.ServerDown.ArmQoS(cfg.QoS, cl.qosMap)
	}
	cl.bindLink(cl.ServerDown, domSwitch, domDUT)
	cl.ServerDown.RegisterMetrics(reg, "fabric.srv.down.")
	cl.Switch.Route(ServerIP, cl.Switch.AddPort(cl.ServerDown))

	// Server uplink: DUT TX → switch. The wire hook echoes each
	// transmitted frame with Ethernet/IP/UDP addresses swapped, so the
	// switch routes it back to the requesting client.
	up := cfg.ServerLink
	up.Name = "srv.up"
	cl.ServerUp = fnet.NewLink(up, cl.Switch)
	cl.ServerUp.SetObserver(o)
	cl.bindLink(cl.ServerUp, domDUT, domSwitch)
	cl.ServerUp.RegisterMetrics(reg, "fabric.srv.up.")
	// The echo response is drawn from the host pool — usually the very
	// request packet just released by the slot free in this same event,
	// so the fabric's steady state recycles one packet per in-flight
	// request and allocates nothing.
	dut.NIC.SetWire(func(s *sim.Simulator, p *pkt.Packet) {
		// Capture the request's identity before Get: the pool may hand
		// back p itself (it was released by the slot free moments ago in
		// this same event), and Get resets the recycled packet's Seq.
		seq := p.Seq
		r := dut.PktPool.Get(len(p.Frame))
		pkt.EchoInto(r, p)
		r.Seq = seq
		cl.ServerUp.Receive(s, r)
	})

	// Client uplinks: slot i → switch. Downlinks are created lazily by
	// AddRPCClient (their endpoint is the client itself).
	cl.ClientUp = make([]*fnet.Link, cfg.Clients)
	cl.ClientDown = make([]*fnet.Link, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		lc := cfg.ClientLink
		lc.Name = fmt.Sprintf("c%d.up", i)
		cl.ClientUp[i] = fnet.NewLink(lc, cl.Switch)
		cl.ClientUp[i].SetObserver(o)
		// Clients and generators feeding this uplink draw their request
		// packets from the owning domain's pool (the host pool when
		// unsharded — central leak accounting either way).
		cl.ClientUp[i].SetPacketPool(cl.clientPool(i))
		cl.bindLink(cl.ClientUp[i], cl.clientDomain(i), domSwitch)
		cl.ClientUp[i].RegisterMetrics(reg, fmt.Sprintf("fabric.c%d.up.", i))
	}
	cl.Switch.RegisterMetrics(reg, "fabric.switch.")

	// Fabric links are fault targets; attach in slot order so the
	// injector's victim choice is deterministic.
	if dut.Faults != nil {
		cl.attachFaultLink(cl.ServerDown, domSwitch)
		cl.attachFaultLink(cl.ServerUp, domDUT)
		for i, l := range cl.ClientUp {
			cl.attachFaultLink(l, cl.clientDomain(i))
		}
	}
	if cl.engine != nil {
		// Per-domain progress counters land in the registry after every
		// historical key, so unsharded registry output is unchanged.
		for _, d := range cl.doms {
			d := d
			reg.CounterFunc("domain."+d.name+".events", func() uint64 { return d.sm.Processed() })
		}
		reg.CounterFunc("domain.epochs", func() uint64 { return cl.engine.Epochs() })
	}
	return cl, nil
}

// Domain indices: the DUT always owns domain 0 (it is the heaviest
// host, so the epoch coordinator runs it inline), the switch domain 1,
// and client groups fill 2..N-1.
const (
	domDUT    = 0
	domSwitch = 1
)

// buildDomains partitions the cluster into Shards event domains and
// builds the barrier-epoch engine. The conservative lookahead is the
// minimum link propagation delay: a handoff produced during an epoch
// always lands strictly after the next barrier, so flushing mailboxes
// at every barrier is always in time.
func (cl *Cluster) buildDomains() {
	cfg := cl.cfg
	groups := cfg.Shards - 2
	if groups < 1 {
		groups = 1
	}
	if groups > cfg.Clients {
		groups = cfg.Clients
	}
	names := []string{"dut", "switch"}
	for g := 0; g < groups; g++ {
		names = append(names, fmt.Sprintf("clients.%d", g))
	}
	for i, name := range names {
		d := &clusterDomain{name: name, out: fnet.NewOutbox(i)}
		if i == domDUT {
			d.sm, d.pool = cl.Sim, cl.DUT.PktPool
		} else {
			d.sm, d.pool = sim.New(), pkt.NewPool(0)
			if cfg.Host.Watchdog != nil {
				d.sm.SetWatchdog(*cfg.Host.Watchdog)
			}
		}
		cl.doms = append(cl.doms, d)
		cl.outboxes = append(cl.outboxes, d.out)
	}
	// Client slots map onto groups in contiguous blocks, so clients
	// that send at the same instant merge in slot order — the order
	// the shared simulator's FIFO would have produced.
	per := (cfg.Clients + groups - 1) / groups
	cl.clientDomOf = make([]int, cfg.Clients)
	for i := range cl.clientDomOf {
		cl.clientDomOf[i] = 2 + i/per
	}
	lookahead := cfg.ClientLink.Delay
	if cfg.ServerLink.Delay < lookahead {
		lookahead = cfg.ServerLink.Delay
	}
	cl.engine = sim.NewEngine(lookahead, func() {
		fnet.Flush(cl.outboxes, &cl.flushScratch)
	})
	for _, d := range cl.doms {
		cl.engine.AddDomain(&sim.Domain{Name: d.name, Sim: d.sm, PendingExternal: d.out.Pending})
	}
	if cl.DUT.Faults != nil {
		// Timeline phases are scheduled per owning domain in Start;
		// everything else the injector runs stays DUT-local.
		cl.DUT.Faults.ScheduleTimelineExternally()
	}
}

// clientDomain returns the domain index owning client slot i.
func (cl *Cluster) clientDomain(i int) int {
	if cl.engine == nil {
		return domDUT
	}
	return cl.clientDomOf[i]
}

// clientPool returns the packet pool client slot i draws from.
func (cl *Cluster) clientPool(i int) *pkt.Pool {
	if cl.engine == nil {
		return cl.DUT.PktPool
	}
	return cl.doms[cl.clientDomOf[i]].pool
}

// bindLink marks l as a cross-domain edge from src to dst when the
// cluster is sharded; unsharded clusters leave the link untouched.
func (cl *Cluster) bindLink(l *fnet.Link, src, dst int) {
	if cl.engine == nil {
		return
	}
	l.BindCrossDomain(cl.doms[src].out, cl.doms[dst].sm, cl.doms[dst].pool)
}

// attachFaultLink registers l as a fault target and records its
// owning domain so timeline phases can be scheduled there.
func (cl *Cluster) attachFaultLink(l *fnet.Link, dom int) {
	cl.DUT.Faults.AttachLink(l)
	cl.faultLinkDom = append(cl.faultLinkDom, dom)
}

// ClientIngress returns slot i's uplink as a traffic.Receiver, so any
// internal/traffic generator can be Installed onto the fabric instead
// of injecting directly into the DUT NIC: generator → uplink → switch
// → server downlink → NIC. Install onto ClientSim(i)'s simulator.
func (cl *Cluster) ClientIngress(i int) traffic.Receiver { return cl.ClientUp[i] }

// ClientSim returns the simulator owning client slot i: the shared
// simulator when unsharded, the slot's client-group domain when
// sharded. Anything generating traffic into ClientIngress(i) must
// schedule its events here.
func (cl *Cluster) ClientSim(i int) *sim.Simulator {
	if cl.engine == nil {
		return cl.Sim
	}
	return cl.doms[cl.clientDomOf[i]].sm
}

// ClientFlow returns the canonical request flow for client slot i
// targeting the NF on the given DUT core: source is the client's own
// fabric address (responses route back by it), destination the DUT.
func (cl *Cluster) ClientFlow(i, core int) traffic.Flow {
	return traffic.Flow{
		Src: ClientIP(i), Dst: ServerIP,
		SrcPort: uint16(7000 + i), DstPort: uint16(9000 + core),
		FrameLen: pkt.MTUFrameLen,
	}
}

// AddRPCClient installs an RPC client on slot i whose requests are
// served by the NF on the given DUT core: it builds the slot's
// downlink, routes the client's address to it, and pins the flow to
// the core with an EP Flow Director rule. A zero ccfg.Flow defaults
// to ClientFlow(i, core). Unsharded clusters share the cluster-wide
// latency histogram; sharded clusters record into per-client
// histograms and merge at Collect (same aggregate, no cross-domain
// writes).
func (cl *Cluster) AddRPCClient(i, core int, ccfg fnet.ClientConfig) *fnet.Client {
	if cl.ClientDown[i] != nil {
		panic(fmt.Sprintf("idio: client slot %d already has an RPC client", i))
	}
	if ccfg.Flow == (traffic.Flow{}) {
		ccfg.Flow = cl.ClientFlow(i, core)
	}
	if cl.engine != nil {
		if ccfg.Hist != nil {
			panic("idio: a sharded cluster cannot share one histogram across client domains; leave ClientConfig.Hist nil")
		}
	} else if ccfg.Hist == nil {
		ccfg.Hist = cl.Hist
	}
	c := fnet.NewClient(ccfg, cl.ClientUp[i])
	o := cl.DUT.Observe()
	reg := o.Registry()

	lc := cl.cfg.ClientLink
	lc.Name = fmt.Sprintf("c%d.down", i)
	cl.ClientDown[i] = fnet.NewLink(lc, c)
	cl.ClientDown[i].SetObserver(o)
	if cl.qosMap != nil {
		cl.ClientDown[i].ArmQoS(cl.cfg.QoS, cl.qosMap)
	}
	cl.bindLink(cl.ClientDown[i], domSwitch, cl.clientDomain(i))
	cl.ClientDown[i].RegisterMetrics(reg, fmt.Sprintf("fabric.c%d.down.", i))
	cl.Switch.Route(ccfg.Flow.Src, cl.Switch.AddPort(cl.ClientDown[i]))
	if cl.DUT.Faults != nil {
		cl.attachFaultLink(cl.ClientDown[i], domSwitch)
	}

	cl.DUT.FlowDir.AddEPRule(ccfg.Flow.Tuple(), core)
	c.RegisterMetrics(reg, fmt.Sprintf("rpc.c%d.", i))
	cl.Clients = append(cl.Clients, c)
	cl.clientSlots = append(cl.clientSlots, i)
	if cl.qosMap != nil {
		cl.clientClass = append(cl.clientClass, cl.qosMap.Class(ccfg.Flow.DSCP))
	}
	return c
}

// AddChurnClient installs a flow-churn client on slot i: it builds
// the slot's downlink and routes the client's address to it, exactly
// like AddRPCClient — but installs NO Flow Director rule. A churn
// client's million-key 5-tuple space cannot be pinned with per-flow
// EP rules (the point of the workload); its flows spread across DUT
// cores through the Toeplitz RSS fallback, as unpinned traffic does
// on real hardware. The first churn client also arms the NIC's
// per-flow statistics table (capacity nic.DefaultFlowStatsEntries —
// at a million flows the refusal counter exposes the hardware bound).
// A zero ccfg.Flow defaults to ClientFlow(i, 0).
func (cl *Cluster) AddChurnClient(i int, ccfg fnet.ChurnConfig) *fnet.ChurnClient {
	if cl.ClientDown[i] != nil {
		panic(fmt.Sprintf("idio: client slot %d already has a client", i))
	}
	if ccfg.Flow == (traffic.Flow{}) {
		ccfg.Flow = cl.ClientFlow(i, 0)
	}
	if cl.engine != nil {
		if ccfg.Hist != nil {
			panic("idio: a sharded cluster cannot share one histogram across client domains; leave ChurnConfig.Hist nil")
		}
	}
	c := fnet.NewChurnClient(cl.ClientSim(i), ccfg, cl.ClientUp[i])
	o := cl.DUT.Observe()
	reg := o.Registry()

	lc := cl.cfg.ClientLink
	lc.Name = fmt.Sprintf("c%d.down", i)
	cl.ClientDown[i] = fnet.NewLink(lc, c)
	cl.ClientDown[i].SetObserver(o)
	if cl.qosMap != nil {
		cl.ClientDown[i].ArmQoS(cl.cfg.QoS, cl.qosMap)
	}
	cl.bindLink(cl.ClientDown[i], domSwitch, cl.clientDomain(i))
	cl.ClientDown[i].RegisterMetrics(reg, fmt.Sprintf("fabric.c%d.down.", i))
	cl.Switch.Route(ccfg.Flow.Src, cl.Switch.AddPort(cl.ClientDown[i]))
	if cl.DUT.Faults != nil {
		cl.attachFaultLink(cl.ClientDown[i], domSwitch)
	}

	if !cl.DUT.FlowDir.FlowStatsEnabled() {
		fd := cl.DUT.FlowDir
		fd.EnableFlowStats(nic.DefaultFlowStatsEntries)
		reg.GaugeFunc("nic.flows_tracked", func() float64 { return float64(fd.TrackedFlows()) })
		reg.GaugeFunc("nic.flow_table_load", fd.FlowStatsLoad)
		reg.CounterFunc("nic.flow_refusals", fd.FlowRefusals)
	}
	c.RegisterMetrics(reg, fmt.Sprintf("churn.c%d.", i))
	cl.ChurnClients = append(cl.ChurnClients, c)
	cl.churnSlots = append(cl.churnSlots, i)
	return c
}

// Start launches the DUT (cores, controller, injectors) and every
// installed RPC client, each on its owning domain's simulator.
// Calling it more than once is a no-op.
func (cl *Cluster) Start() {
	if cl.started {
		return
	}
	cl.started = true
	cl.DUT.Start()
	if cl.engine != nil && cl.DUT.Faults != nil {
		// Every timeline phase runs on the domain owning its target, at
		// exactly its declared instant of that domain's timeline.
		for di := range cl.doms {
			di := di
			cl.DUT.Faults.SchedulePhases(cl.doms[di].sm, func(ph fault.Phase) bool {
				return cl.phaseDomain(ph) == di
			})
		}
	}
	for j, c := range cl.Clients {
		c.Start(cl.ClientSim(cl.clientSlots[j]))
	}
	for j, c := range cl.ChurnClients {
		c.Start(cl.ClientSim(cl.churnSlots[j]))
	}
}

// phaseDomain resolves the domain that owns a timeline phase's
// target: fabric phases belong to the domain whose events feed the
// victim link; every other layer perturbs DUT components.
func (cl *Cluster) phaseDomain(ph fault.Phase) int {
	if ph.Layer == "fabric" && ph.Target >= 0 && ph.Target < len(cl.faultLinkDom) {
		return cl.faultLinkDom[ph.Target]
	}
	return domDUT
}

// validatePhases cross-checks explicitly named phase domains against
// the targets' actual owners (sharded clusters only — on one shared
// simulator the name is advisory).
func (cl *Cluster) validatePhases() error {
	if cl.engine == nil || cl.DUT.Faults == nil || cl.cfg.Host.Faults == nil {
		return nil
	}
	for i, ph := range cl.cfg.Host.Faults.Timeline {
		if ph.Domain == "" {
			continue
		}
		if want := cl.doms[cl.phaseDomain(ph)].name; ph.Domain != want {
			return fmt.Errorf("idio: fault timeline[%d] names domain %q but its %s target %d belongs to domain %q",
				i, ph.Domain, ph.Layer, ph.Target, want)
		}
	}
	return nil
}

// Idle reports whether the whole topology has drained: DUT rings
// empty, no packet queued/serializing/propagating on any link, no
// handoff parked in a cross-domain mailbox, and every RPC client out
// of budget with no request awaiting a response or timeout.
func (cl *Cluster) Idle() bool {
	for _, o := range cl.outboxes {
		if o.Pending() != 0 {
			return false
		}
	}
	if !cl.DUT.idle() {
		return false
	}
	for _, l := range cl.links() {
		if l.InFlight() != 0 {
			return false
		}
	}
	for _, c := range cl.Clients {
		if !c.Done() {
			return false
		}
	}
	for _, c := range cl.ChurnClients {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Pending sums schedulable work across the whole cluster: every
// domain's event queue plus cross-domain mailbox entries not yet
// injected — so a sharded and an unsharded cluster agree on whether
// anything is still in flight (a packet parked in a mailbox counts).
func (cl *Cluster) Pending() int {
	if cl.engine != nil {
		return cl.engine.Pending()
	}
	return cl.Sim.Pending()
}

// links returns every fabric link in slot order (nil downlinks of
// empty client slots are skipped).
func (cl *Cluster) links() []*fnet.Link {
	ls := []*fnet.Link{cl.ServerDown, cl.ServerUp}
	for _, l := range cl.ClientUp {
		ls = append(ls, l)
	}
	for _, l := range cl.ClientDown {
		if l != nil {
			ls = append(ls, l)
		}
	}
	return ls
}

// RunOpts selects how Cluster.Run executes.
type RunOpts struct {
	// Horizon bounds the run in simulated time.
	Horizon sim.Duration
	// UntilIdle stops early at the first 100 µs checkpoint where the
	// topology has drained (all clients done, fabric, mailboxes and
	// rings empty) — the natural mode for fixed request budgets. The
	// checkpoint granularity is identical in sharded and unsharded
	// runs, so both stop at the same instant.
	UntilIdle bool
}

// Run starts the cluster (if needed) and executes to opts.Horizon —
// on the single shared simulator when ClusterConfig.Shards <= 1, or
// as conservative barrier epochs across the per-host domains when
// sharded. It returns the collected results and the first structured
// abort (watchdog trip, named by domain when sharded), nil on a
// clean run.
func (cl *Cluster) Run(opts RunOpts) (Results, error) {
	if err := cl.validatePhases(); err != nil {
		return Results{}, err
	}
	cl.Start()
	if cl.engine == nil {
		if opts.UntilIdle {
			// The DUT's polling loops never terminate, so run in slices
			// and stop when the topology has drained (see
			// System.RunUntilIdle). A tripped watchdog stops the clock;
			// keeping on slicing would spin through the horizon.
			for t := sim.Duration(0); t < opts.Horizon; t += runStep {
				cl.Sim.RunUntil(sim.Time(t + runStep))
				if cl.Sim.Err() != nil || cl.Idle() {
					break
				}
			}
		} else {
			cl.Sim.RunUntil(sim.Time(opts.Horizon))
		}
		return cl.Collect(), cl.Sim.Err()
	}
	var err error
	if opts.UntilIdle {
		// Mirror the slicing loop exactly: the effective end is the
		// horizon rounded up to the next checkpoint, and idleness is
		// evaluated only at checkpoint multiples.
		eff := sim.Time(opts.Horizon)
		if r := eff % sim.Time(runStep); r != 0 {
			eff += sim.Time(runStep) - r
		}
		err = cl.engine.Run(eff, runStep, cl.Idle)
	} else {
		err = cl.engine.Run(sim.Time(opts.Horizon), 0, nil)
	}
	return cl.Collect(), err
}

// Collect snapshots the DUT's results and attaches the fabric and RPC
// summaries. Run calls it; it remains exported for callers that need
// to re-snapshot after a run.
func (cl *Cluster) Collect() Results {
	if cl.engine != nil {
		// Rebuild the aggregate histogram from the per-domain ones;
		// bucket merging reproduces shared recording exactly.
		cl.Hist.Reset()
		for _, c := range cl.Clients {
			cl.Hist.Merge(c.Hist())
		}
	}
	r := cl.DUT.Collect()
	f := &FabricResults{Switch: cl.Switch.Stats()}
	for _, l := range cl.links() {
		lr := LinkResult{Name: l.Name(), Stats: l.Stats()}
		if l.QoSArmed() {
			cs := l.ClassStats()
			for c := range cs {
				lr.Classes = append(lr.Classes, LinkClassResult{
					Class: qos.Class(c).String(), Stats: cs[c],
				})
			}
		}
		f.Links = append(f.Links, lr)
	}
	r.Fabric = f
	if len(cl.Clients) > 0 {
		rpc := &RPCResults{}
		var rxBytes uint64
		var first, last sim.Time
		for i, c := range cl.Clients {
			st := c.Stats()
			rpc.Issued += st.Issued
			rpc.Responses += st.Responses
			rpc.Timeouts += st.Timeouts
			rpc.Late += st.Late
			rpc.Retries += st.Retries
			rpc.Hedges += st.Hedges
			rpc.Failed += st.Failed
			rxBytes += c.RxBytes()
			if fs := c.FirstSend(); i == 0 || fs < first {
				first = fs
			}
			if lr := c.LastResp(); lr > last {
				last = lr
			}
		}
		rpc.GoodputBps = fnet.GoodputBps(rxBytes, first, last)
		if cl.Hist.Count() > 0 {
			rpc.P50 = cl.Hist.Quantile(0.50)
			rpc.P99 = cl.Hist.Quantile(0.99)
			rpc.P999 = cl.Hist.Quantile(0.999)
		}
		if cl.qosMap != nil {
			rpc.Classes = cl.collectClasses()
		}
		r.RPC = rpc
	}
	if len(cl.ChurnClients) > 0 {
		ch := &ChurnResults{
			NICFlowsTracked: cl.DUT.FlowDir.TrackedFlows(),
			NICFlowRefusals: cl.DUT.FlowDir.FlowRefusals(),
		}
		h := stats.NewHistogram(5)
		var rxBytes uint64
		var first, last sim.Time
		for i, c := range cl.ChurnClients {
			st := c.Stats()
			ch.Issued += st.Issued
			ch.Responses += st.Responses
			ch.Timeouts += st.Timeouts
			ch.Late += st.Late
			ch.Arrivals += st.Arrivals
			ch.Departures += st.Departures
			ch.ActiveFlows += st.ActiveFlows
			ch.WheelTicks += st.Wheel.Ticks
			ch.WheelCascades += st.Wheel.Cascades
			if st.TableLoad > ch.TableLoad {
				ch.TableLoad = st.TableLoad
			}
			rxBytes += c.RxBytes()
			if fs := c.FirstSend(); i == 0 || fs < first {
				first = fs
			}
			if lr := c.LastResp(); lr > last {
				last = lr
			}
			h.Merge(c.Hist())
		}
		ch.GoodputBps = fnet.GoodputBps(rxBytes, first, last)
		if h.Count() > 0 {
			ch.P50 = h.Quantile(0.50)
			ch.P99 = h.Quantile(0.99)
			ch.P999 = h.Quantile(0.999)
		}
		r.Churn = ch
	}
	return r
}

// collectClasses builds the per-service-class RPC summary by grouping
// clients on their (Collect-time) class and merging their private
// latency histograms — bucket addition is order-independent, so the
// result is identical across shard counts. Classes with no clients are
// omitted.
func (cl *Cluster) collectClasses() []RPCClassResult {
	var out []RPCClassResult
	for class := 0; class < qos.NumClasses; class++ {
		cr := RPCClassResult{Class: qos.Class(class).String()}
		h := stats.NewHistogram(5)
		var rxBytes uint64
		var first, last sim.Time
		for j, c := range cl.Clients {
			if int(cl.clientClass[j]) != class {
				continue
			}
			st := c.Stats()
			cr.Clients++
			cr.Issued += st.Issued
			cr.Responses += st.Responses
			cr.Timeouts += st.Timeouts
			rxBytes += c.RxBytes()
			if fs := c.FirstSend(); cr.Clients == 1 || fs < first {
				first = fs
			}
			if lr := c.LastResp(); lr > last {
				last = lr
			}
			h.Merge(c.Hist())
		}
		if cr.Clients == 0 {
			continue
		}
		cr.GoodputBps = fnet.GoodputBps(rxBytes, first, last)
		if h.Count() > 0 {
			cr.P50 = h.Quantile(0.50)
			cr.P99 = h.Quantile(0.99)
			cr.P999 = h.Quantile(0.999)
		}
		out = append(out, cr)
	}
	return out
}
