module idio

go 1.22
