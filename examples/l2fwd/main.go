// l2fwd runs the paper's shallow zero-copy network function (Fig. 11):
// two L2 forwarders that read only the Ethernet header and transmit
// each packet back out of the same DMA buffer. The example contrasts
// how DDIO leaves dead payloads bleeding out of the LLC while IDIO
// admits them to the idle MLC and self-invalidates after TX.
//
//	go run ./examples/l2fwd
package main

import (
	"fmt"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/sim"
	"idio/internal/traffic"
)

func run(policy idiocore.Policy) idio.Results {
	cfg := idio.Gem5Config()
	cfg.Policy = policy

	sys := idio.NewSystem(cfg)
	for core := 0; core < cfg.NumCores(); core++ {
		flow := sys.DefaultFlow(core)
		flow.FrameLen = 1024 // Fig. 11 uses 1024-byte packets
		sys.AddNF(core, apps.L2Fwd{}, flow)
		traffic.Bursty{
			Flow:            flow,
			BurstRateBps:    traffic.Gbps(25),
			Period:          10 * sim.Millisecond,
			PacketsPerBurst: cfg.NIC.RingSize,
			NumBursts:       1,
		}.Install(sys.Sim, sys.NIC)
	}
	return sys.RunUntilIdle(9 * sim.Millisecond)
}

func main() {
	for _, policy := range []idiocore.Policy{idiocore.PolicyDDIO, idiocore.PolicyIDIO} {
		res := run(policy)
		fmt.Printf("--- %s ---\n", policy.Name())
		fmt.Printf("forwarded %d packets (%d TX DMA reads)\n", res.TotalProcessed(), res.NIC.DMAReads)
		fmt.Printf("MLC WB=%d  LLC WB=%d  DRAM wr=%d  selfInval=%d\n",
			res.Hier.MLCWriteback, res.Hier.LLCWriteback, res.DRAMWrites, res.Hier.SelfInval)
		fmt.Printf("p50=%.1fus p99=%.1fus\n\n",
			res.P50Across().Microseconds(), res.P99Across().Microseconds())
	}
}
