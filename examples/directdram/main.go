// directdram demonstrates IDIO's selective direct DRAM access
// (Sec. IV-C / Fig. 11): a DoS-detection-style firewall inspects only
// packet headers and drops payloads. The sender marks the flow as
// application class 1 via the IP DSCP field; IDIO then steers payload
// cachelines straight to DRAM, keeping them out of the LLC entirely,
// while headers still arrive through the cache hierarchy.
//
//	go run ./examples/directdram
package main

import (
	"fmt"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/sim"
	"idio/internal/stats"
	"idio/internal/traffic"
)

func run(policy idiocore.Policy, classOne bool) idio.Results {
	cfg := idio.Gem5Config()
	cfg.Policy = policy
	if classOne {
		// The receiver's NIC classifier maps DSCP 46 to class 1.
		cfg.Classifier.ClassOneDSCPs = []uint8{46}
	}

	sys := idio.NewSystem(cfg)
	for core := 0; core < cfg.NumCores(); core++ {
		flow := sys.DefaultFlow(core)
		if classOne {
			flow.DSCP = 46 // sender marks its class via setsockopt (Sec. V-A)
		}
		sys.AddNF(core, apps.L2FwdDropPayload{}, flow)
		traffic.Steady{
			Flow:    flow,
			RateBps: traffic.Gbps(10),
			Count:   4096,
		}.Install(sys.Sim, sys.NIC)
	}
	return sys.RunUntilIdle(20 * sim.Millisecond)
}

func main() {
	base := run(idiocore.PolicyDDIO, false)
	direct := run(idiocore.PolicyIDIO, true)

	report := func(name string, r idio.Results) {
		span := r.Now.Sub(0)
		fmt.Printf("%-22s rx=%5.1f Gbps  llcWB=%6d  dramWr=%5.1f Gbps  directDRAM=%6d  p99=%.1fus\n",
			name, stats.Gbps(r.NIC.RxBytes, span), r.Hier.LLCWriteback,
			stats.Gbps(r.DRAMWrites*64, span), r.Hier.DDIOToDRAM,
			r.P99Across().Microseconds())
	}
	fmt.Println("header-only firewall, payloads never read:")
	report("DDIO (class 0)", base)
	report("IDIO (class 1, DSCP)", direct)
	fmt.Println("\nwith class-1 steering the payload bypasses the cache hierarchy:")
	fmt.Printf("  DDIO keeps %d I/O lines churning the LLC; IDIO sends %d lines straight to DRAM\n",
		base.Hier.DDIOAlloc+base.Hier.DDIOUpdate, direct.Hier.DDIOToDRAM)
}
