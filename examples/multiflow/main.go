// multiflow runs a stateful NAT server handling many flows spread
// across cores by the NIC's hardware steering: flows hash through
// Toeplitz RSS onto per-core queues (no manual pinning), with a few
// elephant flows pinned via Flow Director ATR learning. Arrivals are
// Poisson, the realistic worst case for tail latency.
//
//	go run ./examples/multiflow
package main

import (
	"fmt"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/pkt"
	"idio/internal/sim"
	"idio/internal/traffic"
)

const (
	cores    = 4
	nFlows   = 64
	perFlow  = 256 // packets per flow
	flowGbps = 0.5
)

func buildFlows() []traffic.Flow {
	flows := make([]traffic.Flow, nFlows)
	for i := range flows {
		flows[i] = traffic.Flow{
			Src: pkt.IPv4{10, 1, byte(i / 256), byte(i % 256)}, Dst: pkt.IPv4{10, 0, 0, 1},
			SrcPort: uint16(20000 + i), DstPort: 443,
			FrameLen: 512,
		}
	}
	return flows
}

func run(policy idiocore.Policy) (idio.Results, []uint64) {
	cfg := idio.DefaultConfig(cores)
	cfg.Policy = policy
	sys := idio.NewSystem(cfg)

	// One NAT instance per core, each with its own 1 MB flow table.
	for c := 0; c < cores; c++ {
		nat := &apps.NAT{Table: sys.AllocRegion(1 << 20)}
		// AddNF pins a default flow, but this workload relies on RSS:
		// register the NF without meaningful EP traffic.
		sys.AddNF(c, nat, sys.DefaultFlow(c))
	}

	flows := buildFlows()
	for i, f := range flows {
		// A few "elephant" flows get ATR-learned onto core 0 (as the
		// NIC would after observing their TX side); the rest spread by
		// RSS.
		if i < 4 {
			sys.FlowDir.Learn(f.Tuple(), 0)
		}
		traffic.Poisson{
			Flow: f, RateBps: traffic.Gbps(flowGbps),
			Count: perFlow, Seed: int64(i + 1),
		}.Install(sys.Sim, sys.NIC)
	}
	res := sys.RunUntilIdle(50 * sim.Millisecond)
	perCore := make([]uint64, cores)
	for c, cr := range res.Cores {
		perCore[c] = cr.Processed
	}
	return res, perCore
}

func main() {
	ddio, distDDIO := run(idiocore.PolicyDDIO)
	idioRes, distIDIO := run(idiocore.PolicyIDIO)

	fmt.Printf("%d flows x %d packets over %d cores (RSS + 4 ATR-pinned elephants)\n\n",
		nFlows, perFlow, cores)
	fmt.Printf("%-6s total=%5d drops=%3d p99=%6.1fus  per-core=%v\n",
		"DDIO", ddio.TotalProcessed(), ddio.NIC.RxDrops,
		ddio.P99Across().Microseconds(), distDDIO)
	fmt.Printf("%-6s total=%5d drops=%3d p99=%6.1fus  per-core=%v\n",
		"IDIO", idioRes.TotalProcessed(), idioRes.NIC.RxDrops,
		idioRes.P99Across().Microseconds(), distIDIO)
	fmt.Printf("\nIDIO trims the Poisson tail by %.1f%% while the NAT tables and DMA buffers\n",
		100*(1-idioRes.P99Across().Seconds()/ddio.P99Across().Seconds()))
	fmt.Println("share the hierarchy; RSS keeps the load spread without any manual pinning.")
}
