// isolation reproduces the co-location study (Fig. 10/12): two
// TouchDrop network functions share the LLC with a cache-thrashing
// LLCAntagonist on a third core. Under DDIO the NFs' DMA traffic
// bloats across the whole LLC and slows the antagonist down; IDIO
// keeps network data out of the antagonist's way and improves both
// sides.
//
//	go run ./examples/isolation
package main

import (
	"fmt"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/sim"
	"idio/internal/traffic"
)

func run(policy idiocore.Policy) (idio.Results, float64) {
	cfg := idio.DefaultConfig(3)
	cfg.Hier.LLCSize = 3 << 20
	// The antagonist core gets a small 256 KB MLC (Sec. VI) so it is
	// sensitive to LLC contention.
	cfg.Hier.MLCSizePerCore = []int{0, 0, 256 << 10}
	cfg.Policy = policy

	sys := idio.NewSystem(cfg)
	for core := 0; core < 2; core++ {
		flow := sys.DefaultFlow(core)
		sys.AddNF(core, apps.TouchDrop{}, flow)
		// Continuous 10 Gbps per NF keeps the LLC under sustained
		// pressure for the whole measurement window.
		traffic.Steady{
			Flow:    flow,
			RateBps: traffic.Gbps(10),
			Stop:    sim.Time(20 * sim.Millisecond),
		}.Install(sys.Sim, sys.NIC)
	}
	ant := apps.NewLLCAntagonist(2, sys.AllocRegion(2<<20), cfg.Hier.Clock, sys.Hier, 1)
	sys.Start()
	ant.Start(sys.Sim)
	res := sys.Run(20 * sim.Millisecond)
	return res, ant.CPI()
}

func main() {
	ddio, cpiDDIO := run(idiocore.PolicyDDIO)
	idioRes, cpiIDIO := run(idiocore.PolicyIDIO)

	fmt.Println("co-running 2x TouchDrop (steady 10 Gbps each) + LLCAntagonist")
	fmt.Printf("%-6s p99=%8.1fus  LLC WB=%8d  antagonist CPI=%6.1f  antagonist on-chip hit rate=%.3f\n",
		"DDIO", ddio.P99Across().Microseconds(), ddio.Hier.LLCWriteback, cpiDDIO,
		ddio.Cores[2].Demand.HitRateOnChip())
	fmt.Printf("%-6s p99=%8.1fus  LLC WB=%8d  antagonist CPI=%6.1f  antagonist on-chip hit rate=%.3f\n",
		"IDIO", idioRes.P99Across().Microseconds(), idioRes.Hier.LLCWriteback, cpiIDIO,
		idioRes.Cores[2].Demand.HitRateOnChip())
	fmt.Printf("\nantagonist CPI improvement: %.1f%%  |  NF p99 improvement: %.1f%%\n",
		100*(cpiDDIO-cpiIDIO)/cpiDDIO,
		100*(1-idioRes.P99Across().Seconds()/ddio.P99Across().Seconds()))
}
