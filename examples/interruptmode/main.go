// interruptmode contrasts the two notification models of Sec. II-A on
// the same light workload: a DPDK-style polling-mode driver (burns a
// core, minimal latency) versus a NAPI-style interrupt driver (sleeps
// between packets, pays a wake-up cost per burst). Run with IDIO
// enabled in both cases.
//
//	go run ./examples/interruptmode
package main

import (
	"fmt"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/cpu"
	"idio/internal/sim"
	"idio/internal/traffic"
)

func run(driver cpu.Driver) (idio.Results, uint64) {
	cfg := idio.Gem5Config()
	cfg.Policy = idiocore.PolicyIDIO
	cfg.CPU.Driver = driver

	sys := idio.NewSystem(cfg)
	for core := 0; core < cfg.NumCores(); core++ {
		flow := sys.DefaultFlow(core)
		sys.AddNF(core, apps.TouchDrop{}, flow)
		// A light 2 Gbps trickle: the regime where interrupt mode's
		// efficiency argument applies.
		traffic.Steady{Flow: flow, RateBps: traffic.Gbps(2), Count: 2048}.Install(sys.Sim, sys.NIC)
	}
	res := sys.RunUntilIdle(20 * sim.Millisecond)
	var irqs uint64
	for _, c := range sys.Cores {
		if c != nil {
			irqs += c.Interrupts
		}
	}
	return res, irqs
}

func main() {
	pmd, _ := run(cpu.DriverPolling)
	irq, wakeups := run(cpu.DriverInterrupt)

	fmt.Println("2x TouchDrop, steady 2 Gbps each, IDIO policy")
	fmt.Printf("%-10s p50=%6.2fus  p99=%6.2fus\n",
		"polling", pmd.P50Across().Microseconds(), pmd.P99Across().Microseconds())
	fmt.Printf("%-10s p50=%6.2fus  p99=%6.2fus  (%d interrupt wake-ups)\n",
		"interrupt", irq.P50Across().Microseconds(), irq.P99Across().Microseconds(), wakeups)
	fmt.Printf("\ninterrupt mode adds ~%.1fus of wake-up latency per packet but lets the core sleep;\n",
		irq.P50Across().Microseconds()-pmd.P50Across().Microseconds())
	fmt.Println("polling burns the core for the lowest latency — the trade Sec. II-A describes.")
}
