// Quickstart: build a two-core server, attach a TouchDrop network
// function to each core, blast one 25 Gbps burst of MTU packets at
// each, and compare baseline DDIO against full IDIO.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/sim"
	"idio/internal/traffic"
)

func run(policy idiocore.Policy) idio.Results {
	// Table I system, scaled to the paper's 3 MB gem5 LLC.
	cfg := idio.Gem5Config()
	cfg.Policy = policy

	sys := idio.NewSystem(cfg)
	for core := 0; core < cfg.NumCores(); core++ {
		flow := sys.DefaultFlow(core)
		sys.AddNF(core, apps.TouchDrop{}, flow)
		// One burst: exactly ring-size packets at 25 Gbps (Sec. VI).
		traffic.Bursty{
			Flow:            flow,
			BurstRateBps:    traffic.Gbps(25),
			Period:          10 * sim.Millisecond,
			PacketsPerBurst: cfg.NIC.RingSize,
			NumBursts:       1,
		}.Install(sys.Sim, sys.NIC)
	}
	return sys.RunUntilIdle(9 * sim.Millisecond)
}

func main() {
	ddio := run(idiocore.PolicyDDIO)
	idioRes := run(idiocore.PolicyIDIO)

	fmt.Println("--- baseline DDIO ---")
	fmt.Print(ddio)
	fmt.Println("--- IDIO ---")
	fmt.Print(idioRes)

	pct := func(a, b uint64) float64 {
		if b == 0 {
			return 0
		}
		return 100 * (1 - float64(a)/float64(b))
	}
	fmt.Printf("\nIDIO vs DDIO: MLC WB -%.1f%%, LLC WB -%.1f%%, DRAM writes -%.1f%%, burst time -%.1f%%\n",
		pct(idioRes.Hier.MLCWriteback, ddio.Hier.MLCWriteback),
		pct(idioRes.Hier.LLCWriteback, ddio.Hier.LLCWriteback),
		pct(idioRes.DRAMWrites, ddio.DRAMWrites),
		100*(1-idioRes.ExeTime.Seconds()/ddio.ExeTime.Seconds()))
}
