package idio

// Spec-level walk of Fig. 2: the two application categories' data
// movement. Application "A" (shallow: header-only, e.g. a forwarder)
// pulls only the packet's first cacheline into its core's caches;
// application "B" (deep: full inspection) pulls header and payload.
// Both leave whatever they did not consume in the LLC, from where the
// payload either leaks or bloats.

import (
	"testing"

	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/mem"
	"idio/internal/sim"
	"idio/internal/traffic"
)

func runFig2(t *testing.T, shallow bool) (*System, mem.Region) {
	t.Helper()
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	if shallow {
		sys.AddNF(0, apps.L2FwdDropPayload{}, flow)
	} else {
		sys.AddNF(0, apps.TouchDrop{}, flow)
	}
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(1), Count: 1}.Install(sys.Sim, sys.NIC)
	sys.Start()
	sys.Sim.RunUntil(sim.Time(2 * sim.Millisecond))
	slot := &sys.NIC.Ring(0).Slots()[0]
	return sys, mem.Region{Base: slot.Buf.Base, Size: 1514}
}

func TestFig2ShallowApplicationA(t *testing.T) {
	sys, payload := runFig2(t, true)
	// A-2.x: only the header line moved to the core's MLC...
	if got := sys.Hier.Residency(payload.Base.Line()); got != "mlc0" {
		t.Fatalf("header resides in %q, want mlc0", got)
	}
	// ...while every payload line stayed in the LLC (steps A-1 only).
	n := 0
	payload.Lines(func(l mem.LineAddr) {
		if l == payload.Base.Line() {
			return
		}
		if got := sys.Hier.Residency(l); got != "llc" {
			t.Fatalf("payload line %v resides in %q, want llc", l, got)
		}
		n++
	})
	if n != payload.NumLines()-1 {
		t.Fatalf("checked %d payload lines", n)
	}
	// Exactly one demand access (the header).
	if d := sys.Hier.Demand(0); d.Total() != 1 {
		t.Fatalf("shallow app made %d demand accesses", d.Total())
	}
}

func TestFig2DeepApplicationB(t *testing.T) {
	sys, payload := runFig2(t, false)
	// B-2.x: header and payload all moved into the core's MLC.
	payload.Lines(func(l mem.LineAddr) {
		if got := sys.Hier.Residency(l); got != "mlc0" {
			t.Fatalf("line %v resides in %q, want mlc0", l, got)
		}
	})
	if d := sys.Hier.Demand(0); d.Total() != uint64(payload.NumLines()) {
		t.Fatalf("deep app made %d demand accesses, want %d", d.Total(), payload.NumLines())
	}
}
