package idio

import (
	"strings"
	"testing"

	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/pcie"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// smallCfg shrinks the caches so capacity effects show with small
// rings and short runs.
func smallCfg(cores int, policy idiocore.Policy) Config {
	cfg := DefaultConfig(cores)
	cfg.Hier.MLCSize = 256 << 10
	cfg.Hier.LLCSize = 768 << 10
	cfg.NIC.RingSize = 256
	cfg.Policy = policy
	return cfg
}

func installTouchDrop(sys *System, cores int, gbps float64, pktsPerNF int) {
	for c := 0; c < cores; c++ {
		flow := sys.DefaultFlow(c)
		sys.AddNF(c, apps.TouchDrop{}, flow)
		traffic.Bursty{
			Flow: flow, BurstRateBps: traffic.Gbps(gbps),
			Period: 10 * sim.Millisecond, PacketsPerBurst: pktsPerNF, NumBursts: 1,
		}.Install(sys.Sim, sys.NIC)
	}
}

func TestSystemEndToEndDDIO(t *testing.T) {
	sys := NewSystem(smallCfg(2, idiocore.PolicyDDIO))
	installTouchDrop(sys, 2, 25, 256)
	res := sys.RunUntilIdle(9 * sim.Millisecond)
	if res.TotalProcessed() != 512 {
		t.Fatalf("processed %d, want 512", res.TotalProcessed())
	}
	if res.NIC.RxDrops != 0 {
		t.Fatalf("drops %d", res.NIC.RxDrops)
	}
	if res.Hier.MLCWriteback == 0 {
		t.Fatal("DDIO baseline must produce MLC writebacks")
	}
	if res.ExeTime <= 0 {
		t.Fatal("exe time not measured")
	}
	if res.Cores[0].P99 < res.Cores[0].P50 {
		t.Fatal("percentiles inconsistent")
	}
	// Drained run: every generated packet must have come back to the
	// host pool.
	if res.PktPool.Outstanding != 0 {
		t.Fatalf("packet pool leak after drain: %+v", res.PktPool)
	}
	if res.PktPool.Gets == 0 {
		t.Fatal("generator did not draw from the host pool")
	}
}

func TestSystemIDIOBeatsDDIO(t *testing.T) {
	run := func(policy idiocore.Policy) Results {
		sys := NewSystem(smallCfg(2, policy))
		installTouchDrop(sys, 2, 25, 256)
		return sys.RunUntilIdle(9 * sim.Millisecond)
	}
	ddio := run(idiocore.PolicyDDIO)
	idio := run(idiocore.PolicyIDIO)
	if idio.Hier.MLCWriteback >= ddio.Hier.MLCWriteback {
		t.Errorf("IDIO MLC WB %d !< DDIO %d", idio.Hier.MLCWriteback, ddio.Hier.MLCWriteback)
	}
	if idio.Hier.LLCWriteback >= ddio.Hier.LLCWriteback {
		t.Errorf("IDIO LLC WB %d !< DDIO %d", idio.Hier.LLCWriteback, ddio.Hier.LLCWriteback)
	}
	if idio.ExeTime > ddio.ExeTime {
		t.Errorf("IDIO exe %v !<= DDIO %v", idio.ExeTime, ddio.ExeTime)
	}
	if idio.Hier.SelfInval == 0 || idio.Hier.PrefetchFill == 0 {
		t.Error("IDIO mechanisms idle")
	}
	if ddio.Hier.SelfInval != 0 || ddio.Hier.PrefetchFill != 0 {
		t.Error("DDIO must not use IDIO mechanisms")
	}
}

func TestSystemRunResumes(t *testing.T) {
	sys := NewSystem(smallCfg(1, idiocore.PolicyDDIO))
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(5), Count: 64}.Install(sys.Sim, sys.NIC)
	r1 := sys.Run(10 * sim.Microsecond)
	r2 := sys.Run(5 * sim.Millisecond)
	if r2.TotalProcessed() < r1.TotalProcessed() {
		t.Fatal("progress must be monotonic")
	}
	if r2.TotalProcessed() != 64 {
		t.Fatalf("processed %d, want 64", r2.TotalProcessed())
	}
}

func TestSystemDoubleAddNFPanics(t *testing.T) {
	sys := NewSystem(smallCfg(1, idiocore.PolicyDDIO))
	sys.AddNF(0, apps.TouchDrop{}, sys.DefaultFlow(0))
	defer func() {
		if recover() == nil {
			t.Fatal("double AddNF must panic")
		}
	}()
	sys.AddNF(0, apps.TouchDrop{}, sys.DefaultFlow(0))
}

func TestInvalidatableEnforcementEndToEnd(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyIDIO)
	cfg.EnforceInvalidatable = true
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(5), Count: 32}.Install(sys.Sim, sys.NIC)
	// Ring buffers were registered Invalidatable at construction, so
	// the self-invalidating stack must run without tripping the check.
	res := sys.RunUntilIdle(5 * sim.Millisecond)
	if res.TotalProcessed() != 32 {
		t.Fatalf("processed %d", res.TotalProcessed())
	}
	if res.Hier.SelfInval == 0 {
		t.Fatal("self invalidation must have fired under enforcement")
	}
}

func TestResultsStringIsReadable(t *testing.T) {
	sys := NewSystem(smallCfg(1, idiocore.PolicyIDIO))
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(5), Count: 16}.Install(sys.Sim, sys.NIC)
	res := sys.RunUntilIdle(5 * sim.Millisecond)
	out := res.String()
	for _, want := range []string{"MLC WB", "DRAM", "core0", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteStatsKeyValueFormat(t *testing.T) {
	sys := NewSystem(smallCfg(1, idiocore.PolicyIDIO))
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(5), Count: 32}.Install(sys.Sim, sys.NIC)
	res := sys.RunUntilIdle(5 * sim.Millisecond)
	var buf strings.Builder
	if err := res.WriteStats(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, key := range []string{
		"nic.rx_packets", "hier.mlc_writebacks", "hier.self_invalidations",
		"dram.reads", "core0.processed", "core0.p99_us",
	} {
		if !strings.Contains(out, key) {
			t.Fatalf("stats dump missing %q:\n%s", key, out)
		}
	}
	// Every line is "key value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed stats line %q", line)
		}
	}
}

func TestPoissonArrivalsStretchTheTail(t *testing.T) {
	// Same average rate, deterministic vs Poisson arrivals: the
	// memoryless stream's p99/p50 ratio must exceed the deterministic
	// stream's (queueing from arrival clumps).
	run := func(poisson bool) Results {
		sys := NewSystem(smallCfg(1, idiocore.PolicyIDIO))
		flow := sys.DefaultFlow(0)
		sys.AddNF(0, apps.TouchDrop{}, flow)
		if poisson {
			traffic.Poisson{Flow: flow, RateBps: traffic.Gbps(8), Count: 2048, Seed: 9}.Install(sys.Sim, sys.NIC)
		} else {
			traffic.Steady{Flow: flow, RateBps: traffic.Gbps(8), Count: 2048}.Install(sys.Sim, sys.NIC)
		}
		return sys.RunUntilIdle(20 * sim.Millisecond)
	}
	det := run(false)
	poi := run(true)
	detRatio := float64(det.P99Across()) / float64(det.P50Across())
	poiRatio := float64(poi.P99Across()) / float64(poi.P50Across())
	if poiRatio <= detRatio {
		t.Fatalf("poisson tail ratio %.2f !> deterministic %.2f", poiRatio, detRatio)
	}
}

func TestPerCoreDemandBreakdown(t *testing.T) {
	run := func(policy idiocore.Policy) Results {
		sys := NewSystem(smallCfg(2, policy))
		installTouchDrop(sys, 2, 25, 256)
		return sys.RunUntilIdle(9 * sim.Millisecond)
	}
	ddio := run(idiocore.PolicyDDIO)
	idio := run(idiocore.PolicyIDIO)
	for c := 0; c < 2; c++ {
		d, i := ddio.Cores[c].Demand, idio.Cores[c].Demand
		if d.Total() == 0 || i.Total() == 0 {
			t.Fatalf("core %d: no demand recorded", c)
		}
		// IDIO shifts demand hits from LLC/DRAM into the MLC.
		if i.MLCHit <= d.MLCHit {
			t.Errorf("core %d: IDIO MLC hits %d !> DDIO %d", c, i.MLCHit, d.MLCHit)
		}
		if i.HitRateOnChip() < d.HitRateOnChip() {
			t.Errorf("core %d: IDIO on-chip rate %.3f < DDIO %.3f",
				c, i.HitRateOnChip(), d.HitRateOnChip())
		}
	}
	// The stats dump exposes the breakdown.
	var buf strings.Builder
	if err := idio.WriteStats(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "core0.demand_mlc") ||
		!strings.Contains(buf.String(), "core1.onchip_hit_rate") {
		t.Fatal("stats dump missing per-core demand keys")
	}
}

func TestOccupancySamplingShowsBloat(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	cfg.OccupancySampling = 10 * sim.Microsecond
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Bursty{
		Flow: flow, BurstRateBps: traffic.Gbps(25),
		Period: 10 * sim.Millisecond, PacketsPerBurst: 256, NumBursts: 1,
	}.Install(sys.Sim, sys.NIC)
	sys.RunUntilIdle(9 * sim.Millisecond)

	if sys.LLCOcc.Len() == 0 || sys.MLCOcc[0].Len() == 0 {
		t.Fatal("occupancy gauges empty")
	}
	// During the burst the LLC holds IO-classified lines...
	if sys.LLCIOOcc.Max() == 0 {
		t.Fatal("IO occupancy never rose during the burst")
	}
	// ...and the total LLC occupancy exceeds the DDIO ways' capacity:
	// MLC victims bloat into non-DDIO ways (Observation 3).
	ddioCap := float64(cfg.Hier.LLCSize / 64 / cfg.Hier.LLCAssoc * cfg.Hier.DDIOWays)
	if sys.LLCOcc.Max() <= ddioCap {
		t.Fatalf("LLC occupancy peaked at %.0f, within DDIO capacity %.0f — no bloat",
			sys.LLCOcc.Max(), ddioCap)
	}
	// The MLC gauge saw the execution phase.
	if sys.MLCOcc[0].Max() == 0 {
		t.Fatal("MLC occupancy never rose")
	}
	// Gauges are levels, not rates: values are bounded by capacity.
	if sys.LLCOcc.Max() > float64(cfg.Hier.LLCSize/64) {
		t.Fatal("occupancy exceeds capacity")
	}
}

func TestIOMMUCleanRunHasNoFaults(t *testing.T) {
	cfg := smallCfg(2, idiocore.PolicyIDIO)
	cfg.EnableIOMMU = true
	sys := NewSystem(cfg)
	if sys.IOMMU == nil || sys.IOMMU.Mapped() == 0 {
		t.Fatal("IOMMU not built/mapped")
	}
	installTouchDrop(sys, 2, 25, 128)
	res := sys.RunUntilIdle(9 * sim.Millisecond)
	if res.TotalProcessed() != 256 {
		t.Fatalf("processed %d", res.TotalProcessed())
	}
	if sys.IOMMU.WriteFaults != 0 || sys.IOMMU.ReadFaults != 0 {
		t.Fatalf("clean run faulted: w=%d r=%d", sys.IOMMU.WriteFaults, sys.IOMMU.ReadFaults)
	}
}

func TestIOMMUCoversL2FwdTXPath(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyIDIO)
	cfg.EnableIOMMU = true
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	flow.FrameLen = 1024
	sys.AddNF(0, &apps.L2FwdQueued{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(5), Count: 64}.Install(sys.Sim, sys.NIC)
	res := sys.RunUntilIdle(9 * sim.Millisecond)
	if res.TotalProcessed() != 64 {
		t.Fatalf("processed %d", res.TotalProcessed())
	}
	// TX descriptor fetches and completion write-backs must all be
	// within mapped regions.
	if sys.IOMMU.WriteFaults != 0 || sys.IOMMU.ReadFaults != 0 {
		t.Fatalf("TX path faulted: w=%d r=%d", sys.IOMMU.WriteFaults, sys.IOMMU.ReadFaults)
	}
	if res.NIC.TxPackets != 64 {
		t.Fatalf("tx %d", res.NIC.TxPackets)
	}
}

func TestIOMMURejectsStrayDMA(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	cfg.EnableIOMMU = true
	sys := NewSystem(cfg)
	// A stray DMA write to an unmapped address (e.g. application heap)
	// must fault, be dropped, and leave the hierarchy untouched.
	heap := sys.AllocRegion(4096) // app memory: intentionally NOT DMA-mapped
	tlp, err := pcie.NewWriteTLP(uint64(heap.Base.Line()), pcie.Meta{DestCore: 0})
	if err != nil {
		t.Fatal(err)
	}
	sys.rc.DMAWrite(0, tlp)
	if sys.IOMMU.WriteFaults != 1 {
		t.Fatalf("write faults %d, want 1", sys.IOMMU.WriteFaults)
	}
	if sys.Hier.LLCOccupancy() != 0 {
		t.Fatal("faulted write must not allocate in the LLC")
	}
	sys.rc.DMARead(0, uint64(heap.Base.Line()))
	if sys.IOMMU.ReadFaults != 1 {
		t.Fatalf("read faults %d, want 1", sys.IOMMU.ReadFaults)
	}
}

// The paper observes the execution phase starts ~1.9 µs after the
// first DMA transaction — the NIC's descriptor write-back lag. Check
// that the default configuration reproduces that gap.
func TestDescriptorLagMatchesPaper(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	cfg.CPU.TraceCapacity = 8
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(10), Count: 4}.Install(sys.Sim, sys.NIC)
	sys.RunUntilIdle(5 * sim.Millisecond)

	first, ok := sys.FirstDMAAt()
	if !ok {
		t.Fatal("no DMA observed")
	}
	core := sys.Cores[0]
	if len(core.Trace) == 0 {
		t.Fatal("no trace")
	}
	lag := core.Trace[0].Start.Sub(first)
	// Wire time for 26 lines + the 1.9 us coalescing window + one poll
	// interval of driver reaction: the observable lag must be within
	// ~[1.9, 2.4] us.
	if lag < 1900*sim.Nanosecond || lag > 2400*sim.Nanosecond {
		t.Fatalf("execution-phase lag %v, want ~1.9-2.4us (Sec. VII)", lag)
	}
}

func TestMultiPortAggregation(t *testing.T) {
	cfg := smallCfg(2, idiocore.PolicyIDIO)
	cfg.NumPorts = 2
	sys := NewSystem(cfg)
	if len(sys.Ports()) != 2 || sys.Port(0) != sys.NIC || sys.Port(1) == sys.NIC {
		t.Fatal("port wiring wrong")
	}
	// Each core receives one flow per port (the paper's 2x100GbE: two
	// independent DMA engines feeding the same cores).
	for c := 0; c < 2; c++ {
		flow := sys.DefaultFlow(c)
		sys.AddNF(c, apps.TouchDrop{}, flow)
		for p := 0; p < 2; p++ {
			pf := flow
			pf.SrcPort = uint16(7000 + 10*c + p) // distinct flows per port
			sys.FlowDir.AddEPRule(pf.Tuple(), c)
			traffic.Bursty{
				Flow: pf, BurstRateBps: traffic.Gbps(25),
				Period: 10 * sim.Millisecond, PacketsPerBurst: 128, NumBursts: 1,
			}.Install(sys.Sim, sys.Port(p))
		}
	}
	res := sys.RunUntilIdle(9 * sim.Millisecond)
	// 2 cores x 2 ports x 128 packets, all processed, none dropped.
	if res.TotalProcessed() != 512 {
		t.Fatalf("processed %d, want 512", res.TotalProcessed())
	}
	if d := sys.Port(0).Stats().RxDrops + sys.Port(1).Stats().RxDrops; d != 0 {
		t.Fatalf("drops %d", d)
	}
	// Both ports actually carried traffic.
	if sys.Port(0).Stats().RxPackets != 256 || sys.Port(1).Stats().RxPackets != 256 {
		t.Fatalf("port split %d/%d", sys.Port(0).Stats().RxPackets, sys.Port(1).Stats().RxPackets)
	}
	// Ports have independent DMA engines: both delivered full bursts
	// concurrently without serialising against each other (DMAWrites
	// split evenly).
	if sys.Port(0).Stats().DMAWrites != sys.Port(1).Stats().DMAWrites {
		t.Fatalf("engine split %d/%d", sys.Port(0).Stats().DMAWrites, sys.Port(1).Stats().DMAWrites)
	}
}

func TestMultiPortRoundRobinFairness(t *testing.T) {
	// Saturate one port and trickle the other: the trickle must still
	// be served promptly (round-robin polling prevents starvation).
	cfg := smallCfg(1, idiocore.PolicyIDIO)
	cfg.NumPorts = 2
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	heavy := flow
	heavy.SrcPort = 7100
	sys.FlowDir.AddEPRule(heavy.Tuple(), 0)
	light := flow
	light.SrcPort = 7200
	light.FrameLen = 200
	sys.FlowDir.AddEPRule(light.Tuple(), 0)
	traffic.Bursty{
		Flow: heavy, BurstRateBps: traffic.Gbps(100),
		Period: 10 * sim.Millisecond, PacketsPerBurst: 256, NumBursts: 1,
	}.Install(sys.Sim, sys.Port(0))
	traffic.Steady{Flow: light, RateBps: traffic.Gbps(1), Count: 16}.Install(sys.Sim, sys.Port(1))
	res := sys.RunUntilIdle(9 * sim.Millisecond)
	if res.TotalProcessed() != 272 {
		t.Fatalf("processed %d, want 272", res.TotalProcessed())
	}
}

func TestTableIDefaults(t *testing.T) {
	cfg := DefaultConfig(2)
	// Table I: 3 GHz, 32KB L1 2-way, 1MB MLC 8-way 12CC, 1.5MB x 12-way
	// LLC per core, DDR4-3200, DPDK defaults.
	if cfg.Hier.Clock.FreqHz() != 3_000_000_000 {
		t.Error("core frequency")
	}
	if cfg.Hier.L1Size != 32<<10 || cfg.Hier.L1Assoc != 2 {
		t.Error("L1 geometry")
	}
	if cfg.Hier.MLCSize != 1<<20 || cfg.Hier.MLCAssoc != 8 || cfg.Hier.MLCLat != 12 {
		t.Error("MLC geometry")
	}
	if cfg.Hier.LLCSize != 3<<20 || cfg.Hier.LLCAssoc != 12 || cfg.Hier.LLCLat != 24 {
		t.Error("LLC geometry")
	}
	if cfg.Hier.DDIOWays != 2 {
		t.Error("DDIO ways")
	}
	if cfg.NIC.RingSize != 1024 {
		t.Error("DPDK default ring size")
	}
	if cfg.CPU.BatchSize != 32 {
		t.Error("DPDK default batch")
	}
	if cfg.Classifier.RxBurstTHR != 1250 {
		t.Error("rxBurstTHR: 10 Gbps over 1us = 1250 bytes")
	}
	if cfg.Controller.MLCTHR != 50 {
		t.Error("mlcTHR: 50 MTPS = 50 per us")
	}
	if cfg.Controller.AvgWindow != 8192 {
		t.Error("mlcWBAvg window")
	}
	if cfg.Prefetcher.QueueDepth != 32 {
		t.Error("prefetcher queue depth")
	}
	g5 := Gem5Config()
	if g5.Hier.LLCSize != 3<<20 || g5.NumCores() != 2 {
		t.Error("gem5 scaled config")
	}
}
