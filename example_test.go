package idio_test

// Runnable godoc examples for the public API. They double as smoke
// tests: `go test` verifies the printed output.

import (
	"fmt"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// ExampleNewSystem builds the Table I system, runs one small burst
// under full IDIO, and prints the headline counters.
func ExampleNewSystem() {
	cfg := idio.Gem5Config()
	cfg.Policy = idiocore.PolicyIDIO
	cfg.NIC.RingSize = 128

	sys := idio.NewSystem(cfg)
	for core := 0; core < cfg.NumCores(); core++ {
		flow := sys.DefaultFlow(core)
		sys.AddNF(core, apps.TouchDrop{}, flow)
		traffic.Bursty{
			Flow:            flow,
			BurstRateBps:    traffic.Gbps(25),
			Period:          10 * sim.Millisecond,
			PacketsPerBurst: 128,
			NumBursts:       1,
		}.Install(sys.Sim, sys.NIC)
	}
	res := sys.RunUntilIdle(9 * sim.Millisecond)
	fmt.Printf("processed=%d drops=%d mlcWB=%d llcWB=%d dramWrites=%d\n",
		res.TotalProcessed(), res.NIC.RxDrops,
		res.Hier.MLCWriteback, res.Hier.LLCWriteback, res.DRAMWrites)
	// Output:
	// processed=256 drops=0 mlcWB=0 llcWB=0 dramWrites=0
}

// ExampleConfig_policies contrasts the evaluation's named policies on
// the same burst.
func ExampleConfig_policies() {
	run := func(policy idiocore.Policy) uint64 {
		cfg := idio.Gem5Config()
		cfg.Policy = policy
		// Scale ring and caches together so the ring footprint exceeds
		// the MLC (the regime where recycling policy matters).
		cfg.NIC.RingSize = 256
		cfg.Hier.MLCSize = 256 << 10
		cfg.Hier.LLCSize = 768 << 10
		sys := idio.NewSystem(cfg)
		flow := sys.DefaultFlow(0)
		sys.AddNF(0, apps.TouchDrop{}, flow)
		traffic.Bursty{
			Flow: flow, BurstRateBps: traffic.Gbps(25),
			Period: 10 * sim.Millisecond, PacketsPerBurst: 256, NumBursts: 1,
		}.Install(sys.Sim, sys.NIC)
		return sys.RunUntilIdle(9 * sim.Millisecond).Hier.MLCWriteback
	}
	ddio := run(idiocore.PolicyDDIO)
	idioWB := run(idiocore.PolicyIDIO)
	fmt.Printf("DDIO writes back, IDIO does not: %v\n", ddio > 0 && idioWB == 0)
	// Output:
	// DDIO writes back, IDIO does not: true
}
