// Benchmark harness: one benchmark per paper artifact (Table I and
// Figs. 4, 5, 9-14). Each benchmark regenerates its figure at reduced
// scale per iteration (256-entry rings, proportionally scaled caches)
// so `go test -bench=.` finishes in minutes, and reports the figure's
// headline quantity as a custom metric alongside ns/op. Run
// `go run ./cmd/idiosim -exp all` for the full-scale tables.
package idio_test

import (
	"testing"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/experiment"
	fnet "idio/internal/net"
	"idio/internal/sim"
	"idio/internal/traffic"
)

const (
	benchRing = 256
	benchMLC  = 256 << 10
	benchLLC  = 768 << 10
)

// BenchmarkFig4 regenerates the MLC/DRAM leak characterization
// (Fig. 4): writeback- vs invalidation-dominated regimes by ring size.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiment.Fig4Opts{
			Rings:       []int{64, benchRing},
			Loads:       map[string]float64{"med": 2, "high": 8},
			RingCycles:  5,
			OneWayRings: []int{benchRing},
			MLCSize:     benchMLC,
			LLCSize:     benchLLC,
		}
		rows := experiment.Fig4(opts)
		if i == b.N-1 {
			var large, oneWay experiment.Fig4Row
			for _, r := range rows {
				if r.Ring == benchRing && r.Load == "high" {
					if r.OneWay {
						oneWay = r
					} else {
						large = r
					}
				}
			}
			b.ReportMetric(large.NormMLCWB, "mlcWB/rxBW")
			// The unpartitioned LLC absorbs the writebacks (DMA
			// bloating); the 1-way partition exposes them as DRAM
			// writes — report the partitioned figure.
			b.ReportMetric(oneWay.DRAMWriteGbps, "dramWrGbps_1way")
		}
	}
}

// BenchmarkFig5 regenerates the bursty-traffic writeback timeline
// (Fig. 5) under baseline DDIO.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig5(experiment.Fig5Opts{
			RingSize: benchRing, NumBursts: 2, BurstGbps: 25,
			Horizon: 25 * sim.Millisecond, MLCSize: benchMLC, LLCSize: benchLLC,
		})
		if i == b.N-1 {
			b.ReportMetric(float64(res.TotalMLCWB), "mlcWB")
			b.ReportMetric(float64(res.TotalLLCWB), "llcWB")
		}
	}
}

// BenchmarkFig9 regenerates the per-mechanism burst comparison
// (Fig. 9): DDIO / Invalidate / Prefetch / Static / IDIO at 100 and
// 25 Gbps.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiment.Fig9(experiment.Fig9Opts{
			RingSize: benchRing,
			Rates:    []float64{100, 25},
			Policies: []idiocore.Policy{
				idiocore.PolicyDDIO, idiocore.PolicyInvalidate, idiocore.PolicyPrefetch,
				idiocore.PolicyStatic, idiocore.PolicyIDIO,
			},
			Horizon: 9 * sim.Millisecond,
			MLCSize: benchMLC, LLCSize: benchLLC,
		})
		if i == b.N-1 {
			var ddio, idio float64
			for _, c := range cells {
				if c.RateGbps == 100 && c.Policy == idiocore.PolicyDDIO {
					ddio = float64(c.Summary.MLCWB)
				}
				if c.RateGbps == 100 && c.Policy == idiocore.PolicyIDIO {
					idio = float64(c.Summary.MLCWB)
				}
			}
			if ddio > 0 {
				b.ReportMetric(100*(1-idio/ddio), "mlcWBreduction%@100G")
			}
		}
	}
}

// BenchmarkFig10 regenerates the normalized Static/IDIO comparison
// including the co-running antagonist (Fig. 10).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig10(experiment.Fig10Opts{
			RingSize: benchRing, Rates: []float64{100, 25, 10},
			Horizon: 9 * sim.Millisecond, CoRun: true,
			MLCSize: benchMLC, LLCSize: benchLLC,
		})
		if i == b.N-1 {
			for _, r := range rows {
				if r.Config == "IDIO" && r.RateGbps == 25 {
					b.ReportMetric(r.NormMLCWB, "idioMLCWB/ddio@25G")
					b.ReportMetric(r.NormExeTime, "idioExe/ddio@25G")
				}
			}
		}
	}
}

// BenchmarkFig11 regenerates the shallow-NF (L2Fwd) comparison and
// the selective-direct-DRAM variant (Fig. 11).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig11(experiment.Fig11Opts{
			RingSize: benchRing, FrameLen: 1024, BurstGbps: 25,
			Horizon: 9 * sim.Millisecond,
		})
		if i == b.N-1 {
			b.ReportMetric(float64(res.DDIO.Summary.LLCWB), "ddioLLCWB")
			b.ReportMetric(float64(res.IDIO.Summary.LLCWB), "idioLLCWB")
			b.ReportMetric(res.DirectDRAM.DRAMWriteGbps, "directDramWrGbps")
		}
	}
}

// BenchmarkFig12 regenerates the p50/p99 latency comparison (Fig. 12).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig12(experiment.Fig12Opts{
			RingSize: benchRing, Rates: []float64{100, 25, 10},
			Horizon: 9 * sim.Millisecond,
		})
		if i == b.N-1 {
			for _, r := range rows {
				if r.Policy == "IDIO" && !r.CoRun && r.RateGbps == 25 {
					b.ReportMetric(r.NormP99, "idioP99/ddio@25G")
				}
			}
		}
	}
}

// BenchmarkFig13 regenerates the steady-traffic comparison (Fig. 13).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Fig13(experiment.Fig13Opts{
			RingSize: benchRing, Gbps: 10, Packets: 2048,
			Horizon: 10 * sim.Millisecond, MLCSize: benchMLC, LLCSize: benchLLC,
		})
		if i == b.N-1 {
			if res.DDIO.Summary.MLCWB > 0 {
				b.ReportMetric(100*(1-float64(res.IDIO.Summary.MLCWB)/float64(res.DDIO.Summary.MLCWB)),
					"mlcWBreduction%")
			}
		}
	}
}

// BenchmarkPacketLifecycle measures raw harness throughput on the
// steady-state packet loop: the Fig. 9 system (scaled caches, IDIO
// policy) under steady 50 Gbps per-core load with the TouchDrop NF,
// exercising the full generate → NIC RX → DMA → service → free
// lifecycle. It reports wall-clock ns per simulated packet and
// simulated packets per wall second — the harness-scaling headline —
// and -benchmem's allocs/op divided by the packet count gives
// allocs/packet.
func BenchmarkPacketLifecycle(b *testing.B) {
	const perCore = 4096
	var rx uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := idio.DefaultConfig(2)
		cfg.Hier.MLCSize = benchMLC
		cfg.Hier.LLCSize = benchLLC
		cfg.NIC.RingSize = benchRing
		cfg.Policy = idiocore.PolicyIDIO
		sys := idio.NewSystem(cfg)
		for c := 0; c < cfg.NumCores(); c++ {
			flow := sys.DefaultFlow(c)
			sys.AddNF(c, apps.TouchDrop{}, flow)
			traffic.Steady{
				Flow:    flow,
				RateBps: traffic.Gbps(10), // under the ~20 Gbps/core service capacity: no drops
				Count:   perCore,
			}.Install(sys.Sim, sys.NIC)
		}
		res := sys.RunUntilIdle(50 * sim.Millisecond)
		rx = res.NIC.RxPackets
	}
	b.StopTimer()
	if rx > 0 && b.N > 0 {
		nsPerPkt := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(rx)
		b.ReportMetric(nsPerPkt, "ns/pkt")
		b.ReportMetric(1e3/nsPerPkt, "Mpkts/wallsec")
	}
}

// BenchmarkMillionFlowSteadyState measures the per-request cost of the
// million-flow engine: one million concurrent flows resident in the
// compact flow table, one hashed timer wheel carrying every deadline,
// and the full fabric round trip per request. Setup (admitting the
// population, arming a million timers) happens before the timer; one
// op is one answered request out of the steady churn, and ns/req is
// the headline — it must not grow with the resident population.
func BenchmarkMillionFlowSteadyState(b *testing.B) {
	ccfg := idio.DefaultClusterConfig(1, 1)
	ccfg.Host.Hier.MLCSize = benchMLC
	ccfg.Host.Hier.LLCSize = benchLLC
	ccfg.Host.NIC.RingSize = benchRing
	ccfg.Host.Policy = idiocore.PolicyIDIO
	ccfg.Host.Hier.TimelineBucket = 0
	cl, err := idio.NewCluster(ccfg)
	if err != nil {
		b.Fatalf("NewCluster: %v", err)
	}
	cl.DUT.AddNF(0, apps.L2Fwd{}, cl.DUT.DefaultFlow(0))
	// A million flows thinking 2s each offer ~500k requests/s; the
	// 262ms wheel span forces cascades, so the measured loop includes
	// long-deadline re-inspection, not just near-term fires.
	c := cl.AddChurnClient(0, fnet.ChurnConfig{
		Flows:    1_000_000,
		Requests: 1 << 62,
		Think:    2 * sim.Second,
		Seed:     11,
	})
	cl.Start()
	now := sim.Time(4 * sim.Millisecond)
	cl.Sim.RunUntil(now)
	warm := c.Responses()
	if warm == 0 {
		b.Fatal("warm-up answered no requests")
	}
	b.ReportAllocs()
	b.ResetTimer()
	const step = 500 * sim.Microsecond
	target := warm + uint64(b.N)
	for c.Responses() < target {
		now = now.Add(step)
		cl.Sim.RunUntil(now)
	}
	b.StopTimer()
	reqs := c.Responses() - warm
	if reqs > 0 {
		nsPerReq := float64(b.Elapsed().Nanoseconds()) / float64(reqs)
		b.ReportMetric(nsPerReq, "ns/req")
	}
}

// BenchmarkFig14 regenerates the mlcTHR sensitivity sweep (Fig. 14).
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig14(experiment.Fig14Opts{
			RingSize: benchRing, RateGbps: 100,
			THRs:    []uint64{10, 25, 50, 75, 100},
			Horizon: 9 * sim.Millisecond, MLCSize: benchMLC, LLCSize: benchLLC,
		})
		if i == b.N-1 {
			worst := 0.0
			for _, r := range rows {
				if r.NormMLCWB > worst {
					worst = r.NormMLCWB
				}
			}
			b.ReportMetric(worst, "worstNormMLCWB")
		}
	}
}
