package idio

// Robustness: the system must degrade — drop, count, and keep going —
// under injected faults, never crash or hang, and fault-injected runs
// must stay bit-reproducible per seed.

import (
	"strings"
	"testing"

	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/fault"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// TestRingOverflowUnderStalledDMA: periodic paced-DMA stalls under
// bursty traffic back descriptors up into the ring until it overflows;
// every lost packet must be accounted as a drop, and the system must
// keep processing once the stalls clear.
func TestRingOverflowUnderStalledDMA(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	cfg.NIC.RingSize = 64
	cfg.Faults = &fault.Config{
		Seed: 11,
		DMAStall: &fault.DMAStallConfig{
			Period: 50 * sim.Microsecond,
			Stall:  200 * sim.Microsecond,
		},
	}
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	const generated = 512
	traffic.Bursty{
		Flow: flow, BurstRateBps: traffic.Gbps(100),
		Period: 10 * sim.Millisecond, PacketsPerBurst: generated, NumBursts: 1,
	}.Install(sys.Sim, sys.NIC)
	res := sys.RunUntilIdle(9 * sim.Millisecond)

	if res.Faults.DMAStalls == 0 {
		t.Fatal("no DMA stalls injected")
	}
	if res.NIC.RxDrops == 0 {
		t.Fatal("stalled DMA should have overflowed the 64-entry ring")
	}
	if res.TotalProcessed() == 0 {
		t.Fatal("system wedged: nothing processed despite transient stalls")
	}
	if got := res.TotalProcessed() + res.NIC.RxDrops; got != generated {
		t.Fatalf("conservation: processed+dropped = %d, want %d", got, generated)
	}
}

// TestMbufPoolExhaustionUnderBurst: a pooled ring whose pool is
// smaller than the burst takes PoolDrops for the overflow — and every
// packet is still exactly one of processed / ring-dropped /
// pool-dropped.
func TestMbufPoolExhaustionUnderBurst(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	pool := sys.NewMbufPool(16)
	sys.NIC.Ring(0).AttachPool(pool)
	const generated = 64
	traffic.Bursty{
		Flow: flow, BurstRateBps: traffic.Gbps(100),
		Period: 10 * sim.Millisecond, PacketsPerBurst: generated, NumBursts: 1,
	}.Install(sys.Sim, sys.NIC)
	res := sys.RunUntilIdle(9 * sim.Millisecond)

	if res.NIC.PoolDrops == 0 {
		t.Fatal("a 16-buffer pool under a 64-packet burst should exhaust")
	}
	if res.TotalProcessed() == 0 {
		t.Fatal("nothing processed")
	}
	if got := res.TotalProcessed() + res.NIC.RxDrops + res.NIC.PoolDrops; got != generated {
		t.Fatalf("conservation: processed+drops+poolDrops = %d, want %d", got, generated)
	}
}

// TestMbufLeakInjector: the fault layer's transient leak steals
// buffers and returns them; the pool must recover to full capacity.
func TestMbufLeakInjector(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	cfg.Faults = &fault.Config{
		Seed: 4,
		MbufLeak: &fault.MbufLeakConfig{
			Period: 100 * sim.Microsecond,
			Count:  8,
			Hold:   50 * sim.Microsecond,
		},
	}
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	pool := sys.NewMbufPool(32)
	sys.NIC.Ring(0).AttachPool(pool)
	sys.Start()
	sys.Sim.RunUntil(sim.Time(2 * sim.Millisecond))

	leaked := sys.Faults.Stats().MbufsLeaked
	if leaked == 0 {
		t.Fatal("no mbufs leaked")
	}
	if leaked <= 8 {
		t.Fatalf("only one leak round (%d buffers) in 2 ms of 100 us periods", leaked)
	}
	// Holds release after 50 us and windows never overlap, so at the
	// cutoff at most one window's worth (Count=8) may be outstanding;
	// anything more means buffers leaked permanently.
	if pool.Available() < pool.Capacity()-8 {
		t.Fatalf("pool leaked permanently: %d of %d available", pool.Available(), pool.Capacity())
	}
}

// TestFaultInjectedDeterministicReplay: two runs with identical seeds
// and every injector enabled must produce bit-identical statistics —
// the tentpole property that makes fault scenarios debuggable.
func TestFaultInjectedDeterministicReplay(t *testing.T) {
	run := func() string {
		cfg := smallCfg(2, idiocore.PolicyIDIO)
		cfg.Faults = &fault.Config{
			Seed:        1234,
			PCIe:        &fault.PCIeConfig{CorruptProb: 0.02, PoisonProb: 0.01},
			LinkFlap:    &fault.LinkFlapConfig{Period: 2 * sim.Millisecond, Down: 50 * sim.Microsecond},
			DMAStall:    &fault.DMAStallConfig{Period: sim.Millisecond, Stall: 20 * sim.Microsecond},
			DRAMSpike:   &fault.DRAMSpikeConfig{Period: sim.Millisecond, Extra: 100 * sim.Nanosecond, Length: 100 * sim.Microsecond},
			SnoopThrash: &fault.SnoopThrashConfig{Period: sim.Millisecond, Lines: 64},
			CoreStall:   &fault.CoreStallConfig{Period: sim.Millisecond, Stall: 30 * sim.Microsecond, Core: -1},
		}
		wd := sim.DefaultWatchdogConfig()
		cfg.Watchdog = &wd
		sys := NewSystem(cfg)
		for c := 0; c < 2; c++ {
			flow := sys.DefaultFlow(c)
			sys.AddNF(c, apps.TouchDrop{}, flow)
			traffic.Poisson{Flow: flow, RateBps: traffic.Gbps(10), Count: 512, Seed: 7}.Install(sys.Sim, sys.NIC)
		}
		res := sys.RunUntilIdle(20 * sim.Millisecond)
		if res.Faults.Total() == 0 {
			t.Fatal("no faults injected")
		}
		var buf strings.Builder
		if err := res.WriteStats(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("fault-injected runs diverged:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
}

// TestCorruptedTLPsDegradeGracefully: with every TLP's metadata
// corrupted, mis-steers must be counted and degraded to the LLC
// default — packets still flow, nothing panics.
func TestCorruptedTLPsDegradeGracefully(t *testing.T) {
	cfg := smallCfg(2, idiocore.PolicyIDIO)
	cfg.Faults = &fault.Config{
		Seed: 8,
		PCIe: &fault.PCIeConfig{CorruptProb: 1},
	}
	sys := NewSystem(cfg)
	installTouchDrop(sys, 2, 25, 256)
	res := sys.RunUntilIdle(9 * sim.Millisecond)

	if res.Faults.TLPsCorrupted == 0 {
		t.Fatal("no TLPs corrupted")
	}
	if res.TotalProcessed() == 0 {
		t.Fatal("corruption wedged the pipeline")
	}
	if res.Aborted != nil {
		t.Fatalf("run aborted: %v", res.Aborted)
	}
}

// TestLinkFlapDrops: link-down windows lose packets at the MAC, which
// are counted separately from ring drops.
func TestLinkFlapDrops(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	cfg.Faults = &fault.Config{
		Seed:     21,
		LinkFlap: &fault.LinkFlapConfig{Period: 200 * sim.Microsecond, Down: 150 * sim.Microsecond},
	}
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(5), Count: 2048}.Install(sys.Sim, sys.NIC)
	res := sys.RunUntilIdle(20 * sim.Millisecond)

	if res.Faults.LinkFlaps == 0 {
		t.Fatal("no flaps injected")
	}
	if res.NIC.LinkDownDrops == 0 {
		t.Fatal("flaps lost no packets at a rate that should straddle down windows")
	}
	if res.TotalProcessed() == 0 {
		t.Fatal("link never recovered")
	}
}

// TestWatchdogSurfacesInResults: an event-budget trip shows up as a
// structured abort in Results, and the run terminates instead of
// hanging.
func TestWatchdogSurfacesInResults(t *testing.T) {
	cfg := smallCfg(1, idiocore.PolicyDDIO)
	cfg.Watchdog = &sim.WatchdogConfig{MaxProcessedEvents: 500}
	sys := NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Steady{Flow: flow, RateBps: traffic.Gbps(10), Count: 10000}.Install(sys.Sim, sys.NIC)
	res := sys.Run(5 * sim.Millisecond)
	if res.Aborted == nil {
		t.Fatal("tiny event budget did not trip")
	}
	if res.Aborted.Kind != "event-budget" {
		t.Fatalf("kind = %q", res.Aborted.Kind)
	}
	if sys.Err() == nil {
		t.Fatal("System.Err did not surface the abort")
	}
	// The stats dump stays two-fields-per-line even when aborted.
	var buf strings.Builder
	if err := res.WriteStats(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sim.aborted") {
		t.Fatal("stats dump missing sim.aborted")
	}
}
