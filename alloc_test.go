// Allocation and recycling regression guards for the zero-allocation
// packet lifecycle: the steady-state loop (generate → NIC RX → DMA →
// service → free) must not touch the Go heap per packet, recycling
// must not change simulation results, and drained runs must return
// every packet to the pool.
package idio_test

import (
	"bytes"
	"testing"

	"idio"
	"idio/internal/apps"
	idiocore "idio/internal/core"
	"idio/internal/cpu"
	fnet "idio/internal/net"
	"idio/internal/pkt"
	"idio/internal/qos"
	"idio/internal/sim"
	"idio/internal/traffic"
)

// TestAllocsPerPacket asserts the steady-state packet loop performs
// zero heap allocations. Unbounded collectors that grow amortized —
// per-interval timelines and the raw latency sample store — are
// excluded up front (bucket width 0, Reserve); everything else warms
// up during the lead-in: the packet pool reaches its high-water mark,
// the event heap and stats maps reach steady size.
func TestAllocsPerPacket(t *testing.T) {
	cfg := idio.DefaultConfig(1)
	cfg.Hier.MLCSize = benchMLC
	cfg.Hier.LLCSize = benchLLC
	cfg.NIC.RingSize = benchRing
	cfg.Policy = idiocore.PolicyIDIO
	cfg.Hier.TimelineBucket = 0 // timelines append one bucket per interval, not per packet
	// Admission control is on the steered hot path; it must not cost an
	// allocation (a high watermark keeps the check armed but not firing).
	cfg.NIC.AdmissionWatermark = benchRing
	sys := idio.NewSystem(cfg)
	flow := sys.DefaultFlow(0)
	c := sys.AddNF(0, apps.TouchDrop{}, flow)
	traffic.Steady{
		Flow:    flow,
		RateBps: traffic.Gbps(10),
		Count:   1 << 30, // effectively unbounded: keeps emitting through every measured slice
	}.Install(sys.Sim, sys.NIC)
	sys.Start()
	c.Latencies.Reserve(1 << 20)

	now := sim.Time(4 * sim.Millisecond)
	sys.Sim.RunUntil(now)
	warm := c.Processed
	if warm == 0 {
		t.Fatal("warm-up processed no packets")
	}

	const step = 500 * sim.Microsecond
	avg := testing.AllocsPerRun(100, func() {
		now = now.Add(step)
		sys.Sim.RunUntil(now)
	})
	pkts := c.Processed - warm
	if pkts == 0 {
		t.Fatal("measured window processed no packets")
	}
	if avg != 0 {
		t.Fatalf("%.2f allocs per %v slice (%d packets measured): steady-state loop must not allocate",
			avg, step, pkts)
	}
}

// TestNullPoolByteIdentical proves recycling changes memory reuse and
// nothing else: the same workload over the recycling pool and over a
// pool that always allocates must produce byte-identical stats output.
func TestNullPoolByteIdentical(t *testing.T) {
	run := func(pool *pkt.Pool) (string, idio.Results) {
		cfg := idio.DefaultConfig(2)
		cfg.Hier.MLCSize = benchMLC
		cfg.Hier.LLCSize = benchLLC
		cfg.NIC.RingSize = benchRing
		cfg.Policy = idiocore.PolicyIDIO
		sys := idio.NewSystem(cfg)
		nfs := []cpu.App{apps.TouchDrop{}, apps.L2Fwd{}}
		for c := 0; c < cfg.NumCores(); c++ {
			flow := sys.DefaultFlow(c)
			sys.AddNF(c, nfs[c], flow)
			traffic.Steady{
				Flow: flow, RateBps: traffic.Gbps(10), Count: 2048, Pool: pool,
			}.Install(sys.Sim, sys.NIC)
		}
		res := sys.RunUntilIdle(50 * sim.Millisecond)
		var buf bytes.Buffer
		res.WriteStats(&buf)
		return buf.String(), res
	}
	pooled, pres := run(nil) // discovers the host pool: full recycling
	null, _ := run(pkt.NewNullPool())
	if pooled != null {
		t.Fatalf("pooled and null-pool runs diverge:\n--- pooled ---\n%s\n--- null ---\n%s", pooled, null)
	}
	if pres.PktPool.Outstanding != 0 {
		t.Fatalf("pool leak after drained run: %+v", pres.PktPool)
	}
	if pres.PktPool.Gets == 0 {
		t.Fatal("pooled run never drew from the host pool")
	}
	if pres.PktPool.Allocs >= pres.PktPool.Gets {
		t.Fatalf("pool never recycled: %+v", pres.PktPool)
	}
}

// TestClusterAllocsPerRequest asserts the fabric RPC loop stays off
// the heap with the resilience stack armed: retrying clients (per-
// attempt sequence numbers, timeout events, request-state tracking),
// AQM on every link, and DUT admission control. Faults never fire in
// the measured window — this is the steady-state cost of being ready
// to degrade.
func TestClusterAllocsPerRequest(t *testing.T) {
	ccfg := idio.DefaultClusterConfig(1, 1)
	ccfg.Host.Hier.MLCSize = benchMLC
	ccfg.Host.Hier.LLCSize = benchLLC
	ccfg.Host.NIC.RingSize = benchRing
	ccfg.Host.Policy = idiocore.PolicyIDIO
	ccfg.Host.Hier.TimelineBucket = 0
	ccfg.Host.NIC.AdmissionWatermark = benchRing
	ccfg.ClientLink.AQMTarget = 50 * sim.Microsecond
	ccfg.ServerLink.AQMTarget = 50 * sim.Microsecond
	cl, err := idio.NewCluster(ccfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cl.DUT.AddNF(0, apps.L2Fwd{}, cl.DUT.DefaultFlow(0))
	c := cl.AddRPCClient(0, 0, fnet.ClientConfig{
		Mode: fnet.ModeClosed, Outstanding: 8, Requests: 1 << 30,
		Timeout: 500 * sim.Microsecond,
		Retry:   &fnet.RetryConfig{MaxRetries: 3, Backoff: 100 * sim.Microsecond, JitterFrac: 0.25, Seed: 3},
	})
	cl.Start()

	now := sim.Time(4 * sim.Millisecond)
	cl.Sim.RunUntil(now)
	warm := c.Responses()
	if warm == 0 {
		t.Fatal("warm-up answered no requests")
	}
	const step = 500 * sim.Microsecond
	avg := testing.AllocsPerRun(100, func() {
		now = now.Add(step)
		cl.Sim.RunUntil(now)
	})
	reqs := c.Responses() - warm
	if reqs == 0 {
		t.Fatal("measured window answered no requests")
	}
	if avg != 0 {
		t.Fatalf("%.2f allocs per %v slice (%d requests measured): the armed resilience stack must not allocate",
			avg, step, reqs)
	}
}

// TestChurnAllocsPerRequest asserts the million-flow engine stays off
// the heap in steady state: 128k concurrent flows resident in the
// compact flow table, every think/timeout/arrival deadline on the
// hashed timer wheel, and the NIC's per-flow statistics table armed.
// Admissions, departures, and replacement arrivals all happen inside
// the measured window — churn itself must not allocate once the table,
// wheel slab, and packet pool are warm.
func TestChurnAllocsPerRequest(t *testing.T) {
	ccfg := idio.DefaultClusterConfig(1, 1)
	ccfg.Host.Hier.MLCSize = benchMLC
	ccfg.Host.Hier.LLCSize = benchLLC
	ccfg.Host.NIC.RingSize = benchRing
	ccfg.Host.Policy = idiocore.PolicyIDIO
	ccfg.Host.Hier.TimelineBucket = 0
	cl, err := idio.NewCluster(ccfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cl.DUT.AddNF(0, apps.L2Fwd{}, cl.DUT.DefaultFlow(0))
	// 128k flows thinking 250ms each offer ~512k requests/s — a busy
	// but uncontended load on the one-core DUT, so the window measures
	// the lifecycle, not queueing.
	c := cl.AddChurnClient(0, fnet.ChurnConfig{
		Flows:    128 << 10,
		Requests: 1 << 62,
		Think:    250 * sim.Millisecond,
		Seed:     11,
	})
	cl.Start()

	now := sim.Time(4 * sim.Millisecond)
	cl.Sim.RunUntil(now)
	warm := c.Responses()
	if warm == 0 {
		t.Fatal("warm-up answered no requests")
	}
	const step = 500 * sim.Microsecond
	avg := testing.AllocsPerRun(100, func() {
		now = now.Add(step)
		cl.Sim.RunUntil(now)
	})
	reqs := c.Responses() - warm
	if reqs == 0 {
		t.Fatal("measured window answered no requests")
	}
	st := c.Stats()
	if st.Departures == 0 || st.Arrivals <= uint64(128<<10) {
		t.Fatalf("measured window churned no flows: %+v", st)
	}
	if avg != 0 {
		t.Fatalf("%.2f allocs per %v slice (%d requests measured): the million-flow engine must not allocate",
			avg, step, reqs)
	}
}

// TestClusterAllocsPerRequestQoS re-runs the steady-state allocation
// gate with the full class pipeline armed: DSCP classification and
// per-class RX counters in the NIC, class-quota placement, and the
// strict-priority/WRR scheduler plus per-class queues on every switch
// egress port. Class accounting must ride the fixed per-class arrays —
// zero allocations per request.
func TestClusterAllocsPerRequestQoS(t *testing.T) {
	ccfg := idio.DefaultClusterConfig(1, 1)
	ccfg.Host.Hier.MLCSize = benchMLC
	ccfg.Host.Hier.LLCSize = benchLLC
	ccfg.Host.NIC.RingSize = benchRing
	ccfg.Host.Policy = idiocore.PolicyIDIO
	ccfg.Host.Hier.TimelineBucket = 0
	ccfg.ServerLink.AQMTarget = 50 * sim.Microsecond
	ccfg.QoS = qos.DefaultConfig()
	cl, err := idio.NewCluster(ccfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cl.DUT.AddNF(0, apps.L2Fwd{}, cl.DUT.DefaultFlow(0))
	clcfg := fnet.ClientConfig{
		Mode: fnet.ModeClosed, Outstanding: 8, Requests: 1 << 30,
	}
	clcfg.Flow = cl.ClientFlow(0, 0)
	clcfg.Flow.DSCP = 46 // ef: exercises the strict-priority path
	c := cl.AddRPCClient(0, 0, clcfg)
	cl.Start()

	now := sim.Time(4 * sim.Millisecond)
	cl.Sim.RunUntil(now)
	warm := c.Responses()
	if warm == 0 {
		t.Fatal("warm-up answered no requests")
	}
	const step = 500 * sim.Microsecond
	avg := testing.AllocsPerRun(100, func() {
		now = now.Add(step)
		cl.Sim.RunUntil(now)
	})
	reqs := c.Responses() - warm
	if reqs == 0 {
		t.Fatal("measured window answered no requests")
	}
	if avg != 0 {
		t.Fatalf("%.2f allocs per %v slice (%d requests measured): the armed class pipeline must not allocate",
			avg, step, reqs)
	}
}
