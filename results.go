package idio

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"idio/internal/fault"
	"idio/internal/hier"
	fnet "idio/internal/net"
	"idio/internal/nic"
	"idio/internal/obs"
	"idio/internal/pkt"
	"idio/internal/sim"
	"idio/internal/stats"
)

// LinkResult is one fabric link's counters, labelled by link name.
// Classes is non-nil only for links running the QoS scheduled egress
// (one entry per service class, class order).
type LinkResult struct {
	Name    string
	Stats   fnet.LinkStats
	Classes []LinkClassResult
}

// LinkClassResult is one service class's slice of a scheduled link's
// counters.
type LinkClassResult struct {
	Class string
	Stats fnet.ClassStats
}

// FabricResults summarises the network fabric of a Cluster run: every
// link's counters (slot order) and the switch's forwarding decisions.
// Nil for single-host runs.
type FabricResults struct {
	Links  []LinkResult
	Switch fnet.SwitchStats
}

// RPCResults aggregates end-to-end request/response measurements
// across every RPC client of a Cluster run. Nil when no clients ran.
type RPCResults struct {
	Issued    uint64
	Responses uint64
	Timeouts  uint64
	Late      uint64
	// Retries/Hedges/Failed mirror net.ClientStats: backoff
	// retransmissions, speculative duplicates, and requests abandoned
	// after the retry budget (all zero with retry discipline unset).
	Retries uint64
	Hedges  uint64
	Failed  uint64
	// GoodputBps is aggregate response bits per second from the first
	// request sent to the last response received across clients.
	GoodputBps float64
	// P50/P99/P999 are end-to-end latency percentiles over all clients'
	// matched responses.
	P50  sim.Duration
	P99  sim.Duration
	P999 sim.Duration
	// Classes breaks the summary down by service class when the cluster
	// runs a QoS policy (classes with no clients are omitted); nil
	// otherwise, keeping legacy outputs unchanged.
	Classes []RPCClassResult
}

// ChurnResults aggregates the flow-churn workload's measurements
// across every churn client of a Cluster run. Nil when no churn
// clients ran, keeping legacy outputs unchanged.
type ChurnResults struct {
	Issued    uint64 // wire transmissions (first sends + resends)
	Responses uint64
	Timeouts  uint64
	Late      uint64
	// Arrivals/Departures count flow lifecycle events; ActiveFlows is
	// the resident population at collection time (non-zero when the
	// horizon cut the run short of draining).
	Arrivals    uint64
	Departures  uint64
	ActiveFlows int
	// TableLoad is the worst per-client flow-table occupancy fraction;
	// WheelTicks/WheelCascades sum the hashed-wheel activity.
	TableLoad     float64
	WheelTicks    uint64
	WheelCascades uint64
	// NICFlowsTracked/NICFlowRefusals snapshot the NIC's per-flow
	// statistics table: flows resident vs. insertions refused by the
	// hardware capacity bound.
	NICFlowsTracked int
	NICFlowRefusals uint64
	GoodputBps      float64
	P50             sim.Duration
	P99             sim.Duration
	P999            sim.Duration
}

// RPCClassResult is one service class's slice of the RPC summary: the
// clients whose request flow maps to this class, their aggregate
// counts, goodput, and merged latency percentiles.
type RPCClassResult struct {
	Class      string
	Clients    int
	Issued     uint64
	Responses  uint64
	Timeouts   uint64
	GoodputBps float64
	P50        sim.Duration
	P99        sim.Duration
	P999       sim.Duration
}

// CoreResult summarises one core's software stack.
type CoreResult struct {
	Processed uint64
	P50       sim.Duration
	P99       sim.Duration
	Mean      sim.Duration
	BusyTime  sim.Duration
	// FirstPacketAt / LastDoneAt bracket the core's processing span.
	FirstPacketAt sim.Time
	LastDoneAt    sim.Time
	// Demand is the core's memory-access breakdown by service level.
	Demand hier.CoreDemand
}

// Results is the full measurement snapshot of a run.
type Results struct {
	Now   sim.Time
	Hier  hier.Stats
	NIC   nic.Stats
	Cores []CoreResult

	DRAMReads     uint64
	DRAMWrites    uint64
	DRAMRowHits   uint64
	DRAMRowMisses uint64
	// DRAMPenalized counts accesses served during an injected
	// latency-spike window.
	DRAMPenalized uint64

	// IOMMUReadFaults / IOMMUWriteFaults count DMA transactions the
	// IOMMU rejected (dropped before touching memory). Always zero
	// when the IOMMU is disabled.
	IOMMUReadFaults  uint64
	IOMMUWriteFaults uint64

	// CtrlMisSteers counts TLPs whose decoded metadata named a
	// non-existent destination core (corrupted in flight); the
	// controller degraded them to the LLC default instead of crashing.
	CtrlMisSteers uint64

	// Faults snapshots the fault injectors' perturbation counts; the
	// zero value means no fault layer was configured.
	Faults fault.Stats

	// PktPool snapshots the host packet pool's recycling counters.
	// After a drained run Outstanding must be zero — a non-zero value
	// means pooled packets leaked (a lifecycle bug), and WriteStats
	// surfaces the full accounting.
	PktPool pkt.PoolStats

	// Fabric and RPC carry the network-fabric and client-side summaries
	// of a Cluster run; both are nil for single-host runs, so existing
	// outputs are unchanged.
	Fabric *FabricResults
	RPC    *RPCResults
	// Churn carries the flow-churn workload summary; nil unless churn
	// clients ran.
	Churn *ChurnResults

	// Aborted is non-nil when the run was stopped by the simulator
	// watchdog rather than reaching its horizon.
	Aborted *sim.WatchdogError

	// ExeTime is the burst processing time: first inbound DMA to the
	// last packet completion across cores (Fig. 10's Exe Time).
	ExeTime sim.Duration

	// Timelines (nil when disabled in config): MLC writebacks, LLC
	// writebacks, MLC invalidations, DMA requests, DRAM reads/writes.
	MLCWBTL  *stats.Timeline
	LLCWBTL  *stats.Timeline
	MLCInvTL *stats.Timeline
	DMATL    *stats.Timeline
	DRAMRdTL *stats.Timeline
	DRAMWrTL *stats.Timeline

	// Metrics is the observability registry's snapshot at Collect time,
	// in registration order: every WriteStats counter plus component
	// gauges the flat stats file does not carry. WriteJSON serialises
	// this view.
	Metrics []obs.Sample
	// MetricSeries holds the periodic registry snapshots recorded when
	// Config.Obs.MetricsInterval > 0 (nil otherwise).
	MetricSeries *obs.Series
}

// Collect snapshots the current statistics without advancing time.
func (s *System) Collect() Results {
	r := Results{
		Now:           s.Sim.Now(),
		Hier:          s.Hier.Stats(),
		NIC:           s.NIC.Stats(),
		DRAMReads:     s.Hier.DRAM().Reads(),
		DRAMWrites:    s.Hier.DRAM().Writes(),
		DRAMRowHits:   s.Hier.DRAM().RowHits(),
		DRAMRowMisses: s.Hier.DRAM().RowMisses(),
		DRAMPenalized: s.Hier.DRAM().PenalizedAccesses(),
		CtrlMisSteers: s.Controller.MisSteers,
		MLCWBTL:       s.Hier.MLCWBTL,
		LLCWBTL:       s.Hier.LLCWBTL,
		MLCInvTL:      s.Hier.MLCInvTL,
		DMATL:         s.Hier.DMAReqTL,
		DRAMRdTL:      s.Hier.DRAM().ReadTL,
		DRAMWrTL:      s.Hier.DRAM().WriteTL,
	}
	// Multi-port systems aggregate the non-primary ports' NIC counters
	// so drops on any port are visible in the summary.
	for _, port := range s.ports[1:] {
		ps := port.Stats()
		r.NIC.RxPackets += ps.RxPackets
		r.NIC.RxBytes += ps.RxBytes
		r.NIC.RxDrops += ps.RxDrops
		r.NIC.TxPackets += ps.TxPackets
		r.NIC.DMAWrites += ps.DMAWrites
		r.NIC.DMAReads += ps.DMAReads
		r.NIC.PoolDrops += ps.PoolDrops
		r.NIC.LinkDownDrops += ps.LinkDownDrops
		r.NIC.MisSteers += ps.MisSteers
		r.NIC.AdmissionDrops += ps.AdmissionDrops
		r.NIC.InvariantViolations += ps.InvariantViolations
	}
	if s.IOMMU != nil {
		r.IOMMUReadFaults = s.IOMMU.ReadFaults
		r.IOMMUWriteFaults = s.IOMMU.WriteFaults
	}
	if s.Faults != nil {
		r.Faults = s.Faults.Stats()
	}
	r.PktPool = s.PktPool.Stats()
	var wd *sim.WatchdogError
	if err := s.Sim.Err(); err != nil {
		if werr, ok := err.(*sim.WatchdogError); ok {
			wd = werr
		}
	}
	r.Aborted = wd
	var lastDone sim.Time
	for i, c := range s.Cores {
		if c == nil {
			r.Cores = append(r.Cores, CoreResult{Demand: s.Hier.Demand(i)})
			continue
		}
		cr := CoreResult{
			Processed:     c.Processed,
			BusyTime:      c.BusyTime,
			FirstPacketAt: c.FirstPacketAt,
			LastDoneAt:    c.LastDoneAt,
			Demand:        s.Hier.Demand(i),
		}
		if c.Latencies.Count() > 0 {
			cr.P50 = c.Latencies.P50()
			cr.P99 = c.Latencies.P99()
			cr.Mean = c.Latencies.Mean()
		}
		r.Cores = append(r.Cores, cr)
		if c.LastDoneAt > lastDone {
			lastDone = c.LastDoneAt
		}
	}
	if first, ok := s.FirstDMAAt(); ok && lastDone > first {
		r.ExeTime = lastDone.Sub(first)
	}
	r.Metrics = s.obs.Registry().Snapshot()
	r.MetricSeries = s.obs.Metrics()
	return r
}

// ResultsSchemaVersion identifies the WriteJSON layout; bump it on any
// incompatible change to the emitted structure.
const ResultsSchemaVersion = 1

// jsonMetric is one registry sample in the WriteJSON output.
type jsonMetric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
}

// jsonSeries is the periodic metric time series in the WriteJSON
// output: one row of values per sample time, columns as in Names.
type jsonSeries struct {
	Names  []string    `json:"names"`
	TimeUS []float64   `json:"time_us"`
	Rows   [][]float64 `json:"rows"`
}

// jsonResults is the WriteJSON document.
type jsonResults struct {
	Schema    int          `json:"schema"`
	NowUS     float64      `json:"now_us"`
	ExeTimeUS float64      `json:"exe_time_us"`
	Aborted   bool         `json:"aborted"`
	Metrics   []jsonMetric `json:"metrics"`
	Series    *jsonSeries  `json:"series,omitempty"`
}

// WriteJSON emits the run's metrics as a schema-versioned JSON
// document sourced from the observability registry: each sample keeps
// its registration-order position, name, kind, and value, so two runs
// of the same configuration produce structurally identical documents.
// When periodic snapshots were enabled (Config.Obs.MetricsInterval),
// the document also carries the full time series.
func (r Results) WriteJSON(w io.Writer) error {
	doc := jsonResults{
		Schema:    ResultsSchemaVersion,
		NowUS:     r.Now.Microseconds(),
		ExeTimeUS: r.ExeTime.Microseconds(),
		Aborted:   r.Aborted != nil,
		Metrics:   make([]jsonMetric, 0, len(r.Metrics)),
	}
	for _, m := range r.Metrics {
		doc.Metrics = append(doc.Metrics, jsonMetric{Name: m.Name, Kind: m.Kind.String(), Value: m.Value})
	}
	if s := r.MetricSeries; s != nil && s.Len() > 0 {
		js := &jsonSeries{Names: s.Names()}
		for i := 0; i < s.Len(); i++ {
			tUS, row := s.Row(i)
			js.TimeUS = append(js.TimeUS, tUS)
			js.Rows = append(js.Rows, row)
		}
		doc.Series = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TotalProcessed sums processed packets across cores.
func (r Results) TotalProcessed() uint64 {
	var n uint64
	for _, c := range r.Cores {
		n += c.Processed
	}
	return n
}

// P99Across returns the worst per-core p99 (the paper reports
// per-application p99; with symmetric NFs the max is representative).
func (r Results) P99Across() sim.Duration {
	var worst sim.Duration
	for _, c := range r.Cores {
		if c.P99 > worst {
			worst = c.P99
		}
	}
	return worst
}

// P50Across returns the worst per-core median latency.
func (r Results) P50Across() sim.Duration {
	var worst sim.Duration
	for _, c := range r.Cores {
		if c.P50 > worst {
			worst = c.P50
		}
	}
	return worst
}

// WriteStats dumps every counter as flat key=value lines (gem5-style
// stats file), machine-greppable for post-processing.
func (r Results) WriteStats(w io.Writer) error {
	kv := []struct {
		k string
		v interface{}
	}{
		{"sim.now_us", r.Now.Microseconds()},
		{"nic.rx_packets", r.NIC.RxPackets},
		{"nic.rx_bytes", r.NIC.RxBytes},
		{"nic.rx_drops", r.NIC.RxDrops},
		{"nic.pool_drops", r.NIC.PoolDrops},
		{"nic.linkdown_drops", r.NIC.LinkDownDrops},
		{"nic.missteers", r.NIC.MisSteers},
		{"nic.invariant_violations", r.NIC.InvariantViolations},
		{"nic.tx_packets", r.NIC.TxPackets},
		{"nic.dma_writes", r.NIC.DMAWrites},
		{"nic.dma_reads", r.NIC.DMAReads},
		{"iommu.read_faults", r.IOMMUReadFaults},
		{"iommu.write_faults", r.IOMMUWriteFaults},
		{"ctrl.missteers", r.CtrlMisSteers},
		{"hier.mlc_writebacks", r.Hier.MLCWriteback},
		{"hier.mlc_writebacks_dirty", r.Hier.MLCWBDirty},
		{"hier.mlc_invalidations", r.Hier.MLCInval},
		{"hier.llc_writebacks", r.Hier.LLCWriteback},
		{"hier.llc_writebacks_io", r.Hier.LLCWBIO},
		{"hier.dir_back_invalidations", r.Hier.DirBackInval},
		{"hier.self_invalidations", r.Hier.SelfInval},
		{"hier.ddio_updates", r.Hier.DDIOUpdate},
		{"hier.ddio_allocations", r.Hier.DDIOAlloc},
		{"hier.ddio_direct_dram", r.Hier.DDIOToDRAM},
		{"hier.prefetch_fills", r.Hier.PrefetchFill},
		{"hier.prefetch_drops", r.Hier.PrefetchDrop},
		{"hier.demand_l1_hits", r.Hier.DemandL1Hit},
		{"hier.demand_mlc_hits", r.Hier.DemandMLCHit},
		{"hier.demand_llc_hits", r.Hier.DemandLLCHit},
		{"hier.demand_dram", r.Hier.DemandDRAM},
		{"dram.reads", r.DRAMReads},
		{"dram.writes", r.DRAMWrites},
		{"dram.row_hits", r.DRAMRowHits},
		{"dram.row_misses", r.DRAMRowMisses},
		{"dram.penalized_accesses", r.DRAMPenalized},
		{"exe_time_us", r.ExeTime.Microseconds()},
		{"sim.aborted", boolToInt(r.Aborted != nil)},
	}
	// Admission-control sheds appear only when the watermark actually
	// fired, keeping the historical key set for unconfigured runs.
	if r.NIC.AdmissionDrops > 0 {
		kv = append(kv, struct {
			k string
			v interface{}
		}{"nic.admission_drops", r.NIC.AdmissionDrops})
	}
	// Pool-leak visibility, following the fault-keys pattern: a healthy
	// drained run has zero outstanding pooled packets and the keys stay
	// absent (legacy outputs unchanged); a leak surfaces the full
	// accounting.
	if r.PktPool.Outstanding > 0 {
		kv = append(kv, []struct {
			k string
			v interface{}
		}{
			{"pkt_pool.gets", r.PktPool.Gets},
			{"pkt_pool.puts", r.PktPool.Puts},
			{"pkt_pool.allocs", r.PktPool.Allocs},
			{"pkt_pool.outstanding", r.PktPool.Outstanding},
			{"pkt_pool.high_water", r.PktPool.HighWater},
		}...)
	}
	if r.Faults.Total() > 0 {
		kv = append(kv, []struct {
			k string
			v interface{}
		}{
			{"fault.tlps_corrupted", r.Faults.TLPsCorrupted},
			{"fault.tlps_poisoned", r.Faults.TLPsPoisoned},
			{"fault.link_flaps", r.Faults.LinkFlaps},
			{"fault.dma_stalls", r.Faults.DMAStalls},
			{"fault.mbufs_leaked", r.Faults.MbufsLeaked},
			{"fault.dram_spikes", r.Faults.DRAMSpikes},
			{"fault.snoop_thrashes", r.Faults.SnoopThrashes},
			{"fault.dir_evictions", r.Faults.DirEvictions},
			{"fault.core_stalls", r.Faults.CoreStalls},
		}...)
		// Fabric fault keys only when a fabric was perturbed, so
		// single-host fault runs keep their historical key set.
		if r.Faults.FabricFlaps+r.Faults.FabricDegrades > 0 {
			kv = append(kv, []struct {
				k string
				v interface{}
			}{
				{"fault.fabric_flaps", r.Faults.FabricFlaps},
				{"fault.fabric_degrades", r.Faults.FabricDegrades},
			}...)
		}
		if r.Faults.TimelinePhases > 0 {
			kv = append(kv, struct {
				k string
				v interface{}
			}{"fault.timeline_phases", r.Faults.TimelinePhases})
		}
	}
	if f := r.Fabric; f != nil {
		for _, l := range f.Links {
			kv = append(kv, []struct {
				k string
				v interface{}
			}{
				{"fabric." + l.Name + ".tx_packets", l.Stats.TxPackets},
				{"fabric." + l.Name + ".delivered", l.Stats.Delivered},
				{"fabric." + l.Name + ".tail_drops", l.Stats.TailDrops},
				{"fabric." + l.Name + ".down_drops", l.Stats.DownDrops},
				{"fabric." + l.Name + ".queue_hwm", l.Stats.QueueHighWater},
			}...)
			// AQM sheds only when the controller actually dropped, so
			// tail-drop-only fabrics keep their historical key set.
			if l.Stats.AQMDrops > 0 {
				kv = append(kv, struct {
					k string
					v interface{}
				}{"fabric." + l.Name + ".aqm_drops", l.Stats.AQMDrops})
			}
			// Per-class egress breakdown, present only on scheduled (QoS)
			// links.
			for _, cc := range l.Classes {
				cp := "fabric." + l.Name + "." + cc.Class + "."
				kv = append(kv, []struct {
					k string
					v interface{}
				}{
					{cp + "tx_packets", cc.Stats.TxPackets},
					{cp + "tail_drops", cc.Stats.TailDrops},
				}...)
				if cc.Stats.AQMDrops > 0 {
					kv = append(kv, struct {
						k string
						v interface{}
					}{cp + "aqm_drops", cc.Stats.AQMDrops})
				}
			}
		}
		kv = append(kv, []struct {
			k string
			v interface{}
		}{
			{"fabric.switch.forwarded", f.Switch.Forwarded},
			{"fabric.switch.no_route", f.Switch.NoRoute},
			{"fabric.switch.parse_drops", f.Switch.ParseDrops},
		}...)
	}
	if rpc := r.RPC; rpc != nil {
		kv = append(kv, []struct {
			k string
			v interface{}
		}{
			{"rpc.issued", rpc.Issued},
			{"rpc.responses", rpc.Responses},
			{"rpc.timeouts", rpc.Timeouts},
			{"rpc.late", rpc.Late},
		}...)
		if rpc.Retries+rpc.Hedges+rpc.Failed > 0 {
			kv = append(kv, []struct {
				k string
				v interface{}
			}{
				{"rpc.retries", rpc.Retries},
				{"rpc.hedges", rpc.Hedges},
				{"rpc.failed", rpc.Failed},
			}...)
		}
		kv = append(kv, []struct {
			k string
			v interface{}
		}{
			{"rpc.goodput_gbps", fmt.Sprintf("%.3f", rpc.GoodputBps/1e9)},
			{"rpc.p50_us", fmt.Sprintf("%.3f", rpc.P50.Microseconds())},
			{"rpc.p99_us", fmt.Sprintf("%.3f", rpc.P99.Microseconds())},
			{"rpc.p999_us", fmt.Sprintf("%.3f", rpc.P999.Microseconds())},
		}...)
		// Per-service-class SLO accounting, present only under a QoS
		// policy.
		for _, c := range rpc.Classes {
			cp := "rpc." + c.Class + "."
			kv = append(kv, []struct {
				k string
				v interface{}
			}{
				{cp + "clients", c.Clients},
				{cp + "issued", c.Issued},
				{cp + "responses", c.Responses},
				{cp + "timeouts", c.Timeouts},
				{cp + "goodput_gbps", fmt.Sprintf("%.3f", c.GoodputBps/1e9)},
				{cp + "p50_us", fmt.Sprintf("%.3f", c.P50.Microseconds())},
				{cp + "p99_us", fmt.Sprintf("%.3f", c.P99.Microseconds())},
				{cp + "p999_us", fmt.Sprintf("%.3f", c.P999.Microseconds())},
			}...)
		}
	}
	if ch := r.Churn; ch != nil {
		kv = append(kv, []struct {
			k string
			v interface{}
		}{
			{"churn.issued", ch.Issued},
			{"churn.responses", ch.Responses},
			{"churn.timeouts", ch.Timeouts},
			{"churn.late", ch.Late},
			{"churn.arrivals", ch.Arrivals},
			{"churn.departures", ch.Departures},
			{"churn.active_flows", ch.ActiveFlows},
			{"churn.table_load", fmt.Sprintf("%.4f", ch.TableLoad)},
			{"churn.wheel_ticks", ch.WheelTicks},
			{"churn.wheel_cascades", ch.WheelCascades},
			{"churn.nic_flows_tracked", ch.NICFlowsTracked},
			{"churn.nic_flow_refusals", ch.NICFlowRefusals},
			{"churn.goodput_gbps", fmt.Sprintf("%.3f", ch.GoodputBps/1e9)},
			{"churn.p50_us", fmt.Sprintf("%.3f", ch.P50.Microseconds())},
			{"churn.p99_us", fmt.Sprintf("%.3f", ch.P99.Microseconds())},
			{"churn.p999_us", fmt.Sprintf("%.3f", ch.P999.Microseconds())},
		}...)
	}
	for _, e := range kv {
		if _, err := fmt.Fprintf(w, "%-30s %v\n", e.k, e.v); err != nil {
			return err
		}
	}
	for i, c := range r.Cores {
		if c.Processed == 0 && c.Demand.Total() == 0 {
			continue
		}
		entries := []struct {
			k string
			v string
		}{
			{fmt.Sprintf("core%d.processed", i), fmt.Sprintf("%d", c.Processed)},
			{fmt.Sprintf("core%d.p50_us", i), fmt.Sprintf("%.3f", c.P50.Microseconds())},
			{fmt.Sprintf("core%d.p99_us", i), fmt.Sprintf("%.3f", c.P99.Microseconds())},
			{fmt.Sprintf("core%d.demand_l1", i), fmt.Sprintf("%d", c.Demand.L1Hit)},
			{fmt.Sprintf("core%d.demand_mlc", i), fmt.Sprintf("%d", c.Demand.MLCHit)},
			{fmt.Sprintf("core%d.demand_llc", i), fmt.Sprintf("%d", c.Demand.LLCHit)},
			{fmt.Sprintf("core%d.demand_dram", i), fmt.Sprintf("%d", c.Demand.DRAM)},
			{fmt.Sprintf("core%d.onchip_hit_rate", i), fmt.Sprintf("%.4f", c.Demand.HitRateOnChip())},
		}
		for _, e := range entries {
			if _, err := fmt.Fprintf(w, "%-30s %s\n", e.k, e.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders a human-readable summary.
func (r Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v processed=%d drops=%d (pool %d, linkdown %d)\n",
		r.Now, r.TotalProcessed(), r.NIC.RxDrops, r.NIC.PoolDrops, r.NIC.LinkDownDrops)
	if r.IOMMUReadFaults+r.IOMMUWriteFaults > 0 {
		fmt.Fprintf(&b, "  IOMMU faults: read=%d write=%d\n", r.IOMMUReadFaults, r.IOMMUWriteFaults)
	}
	if r.Faults.Total() > 0 {
		fmt.Fprintf(&b, "  faults: tlpCorrupt=%d tlpPoison=%d flaps=%d dmaStalls=%d mbufLeaks=%d dramSpikes=%d snoopThrash=%d coreStalls=%d missteers=%d\n",
			r.Faults.TLPsCorrupted, r.Faults.TLPsPoisoned, r.Faults.LinkFlaps,
			r.Faults.DMAStalls, r.Faults.MbufsLeaked, r.Faults.DRAMSpikes,
			r.Faults.SnoopThrashes, r.Faults.CoreStalls, r.CtrlMisSteers)
	}
	if r.Faults.FabricFlaps+r.Faults.FabricDegrades > 0 {
		fmt.Fprintf(&b, "  fabric faults: flaps=%d degrades=%d\n",
			r.Faults.FabricFlaps, r.Faults.FabricDegrades)
	}
	if r.Faults.TimelinePhases > 0 {
		fmt.Fprintf(&b, "  chaos timeline: phases=%d\n", r.Faults.TimelinePhases)
	}
	if r.NIC.AdmissionDrops > 0 {
		fmt.Fprintf(&b, "  admission control: sheds=%d\n", r.NIC.AdmissionDrops)
	}
	if f := r.Fabric; f != nil {
		var tail, down, aqm uint64
		for _, l := range f.Links {
			tail += l.Stats.TailDrops
			down += l.Stats.DownDrops
			aqm += l.Stats.AQMDrops
		}
		fmt.Fprintf(&b, "  fabric: forwarded=%d noroute=%d tailDrops=%d downDrops=%d\n",
			f.Switch.Forwarded, f.Switch.NoRoute, tail, down)
		if aqm > 0 {
			fmt.Fprintf(&b, "  fabric aqm: sheds=%d\n", aqm)
		}
	}
	if rpc := r.RPC; rpc != nil {
		fmt.Fprintf(&b, "  rpc: issued=%d resp=%d timeouts=%d late=%d goodput=%.2fGbps p50=%.2fus p99=%.2fus p999=%.2fus\n",
			rpc.Issued, rpc.Responses, rpc.Timeouts, rpc.Late, rpc.GoodputBps/1e9,
			rpc.P50.Microseconds(), rpc.P99.Microseconds(), rpc.P999.Microseconds())
		if rpc.Retries+rpc.Hedges+rpc.Failed > 0 {
			fmt.Fprintf(&b, "  rpc retry: retries=%d hedges=%d failed=%d\n",
				rpc.Retries, rpc.Hedges, rpc.Failed)
		}
		for _, c := range rpc.Classes {
			fmt.Fprintf(&b, "  rpc[%s]: clients=%d issued=%d resp=%d timeouts=%d goodput=%.2fGbps p50=%.2fus p99=%.2fus p999=%.2fus\n",
				c.Class, c.Clients, c.Issued, c.Responses, c.Timeouts,
				c.GoodputBps/1e9, c.P50.Microseconds(), c.P99.Microseconds(), c.P999.Microseconds())
		}
	}
	if ch := r.Churn; ch != nil {
		fmt.Fprintf(&b, "  churn: issued=%d resp=%d timeouts=%d late=%d flows=%d (arr=%d dep=%d) goodput=%.2fGbps p99=%.2fus\n",
			ch.Issued, ch.Responses, ch.Timeouts, ch.Late, ch.ActiveFlows,
			ch.Arrivals, ch.Departures, ch.GoodputBps/1e9, ch.P99.Microseconds())
		fmt.Fprintf(&b, "  churn engine: tableLoad=%.3f wheelTicks=%d cascades=%d nicTracked=%d nicRefused=%d\n",
			ch.TableLoad, ch.WheelTicks, ch.WheelCascades, ch.NICFlowsTracked, ch.NICFlowRefusals)
	}
	if r.PktPool.Outstanding > 0 {
		fmt.Fprintf(&b, "  pkt pool: outstanding=%d (gets=%d puts=%d allocs=%d hwm=%d)\n",
			r.PktPool.Outstanding, r.PktPool.Gets, r.PktPool.Puts,
			r.PktPool.Allocs, r.PktPool.HighWater)
	}
	if r.Aborted != nil {
		fmt.Fprintf(&b, "  ABORTED: %v\n", r.Aborted)
	}
	fmt.Fprintf(&b, "  MLC WB=%d (dirty %d) inval=%d | LLC WB=%d (IO %d) | selfInval=%d\n",
		r.Hier.MLCWriteback, r.Hier.MLCWBDirty, r.Hier.MLCInval,
		r.Hier.LLCWriteback, r.Hier.LLCWBIO, r.Hier.SelfInval)
	fmt.Fprintf(&b, "  DRAM rd=%d wr=%d | DDIO alloc=%d update=%d direct=%d | prefetch fill=%d drop=%d\n",
		r.DRAMReads, r.DRAMWrites, r.Hier.DDIOAlloc, r.Hier.DDIOUpdate, r.Hier.DDIOToDRAM,
		r.Hier.PrefetchFill, r.Hier.PrefetchDrop)
	fmt.Fprintf(&b, "  exeTime=%.1fus\n", r.ExeTime.Microseconds())
	for i, c := range r.Cores {
		if c.Processed == 0 {
			continue
		}
		fmt.Fprintf(&b, "  core%d: n=%d p50=%.2fus p99=%.2fus mean=%.2fus\n",
			i, c.Processed, c.P50.Microseconds(), c.P99.Microseconds(), c.Mean.Microseconds())
	}
	return b.String()
}
