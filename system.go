package idio

import (
	"fmt"

	idiocore "idio/internal/core"
	"idio/internal/cpu"
	"idio/internal/fault"
	"idio/internal/hier"
	"idio/internal/mem"
	"idio/internal/nic"
	"idio/internal/obs"
	"idio/internal/pcie"
	"idio/internal/pkt"
	"idio/internal/qos"
	"idio/internal/sim"
	"idio/internal/stats"
	"idio/internal/traffic"
)

// rootComplex is the host side of the PCIe link: it decodes each DMA
// transaction's IDIO metadata, consults the controller's data plane,
// and drives the hierarchy (and prefetchers) accordingly. It
// implements nic.Sink.
type rootComplex struct {
	sys *System

	// firstDMAAt records the first inbound DMA after the last call to
	// ResetMeasurement — the start of the DMA phase for exe-time
	// accounting (Fig. 10).
	firstDMAAt sim.Time
	sawDMA     bool
}

// DMAWrite implements nic.Sink.
func (rc *rootComplex) DMAWrite(now sim.Time, tlp pcie.WriteTLP) sim.Duration {
	if rc.sys.IOMMU != nil && !rc.sys.IOMMU.CheckWrite(tlp.LineAddr) {
		if o := rc.sys.obs; o.Tracing() {
			o.LineEvent(obs.EvDrop, now, tlp.LineAddr, -1, "iommu-fault", 0)
		}
		return 0 // faulted: dropped before touching memory
	}
	if !rc.sawDMA {
		rc.sawDMA = true
		rc.firstDMAAt = now
	}
	meta := tlp.Meta()
	steer := rc.sys.Controller.Steer(meta)
	var lat sim.Duration
	switch steer {
	case idiocore.SteerDRAM:
		lat = rc.sys.Hier.DirectDRAMWrite(now, mem.LineAddr(tlp.LineAddr))
	case idiocore.SteerMLC:
		lat = rc.writeLine(now, tlp.LineAddr, meta.QoS)
		// A corrupted metadata bit can decode to a core the system
		// does not have; Steer only returns SteerMLC for in-range
		// cores, but guard anyway — a mis-steer must degrade, never
		// crash.
		if meta.DestCore >= 0 && meta.DestCore < len(rc.sys.Prefetchers) {
			if rc.sys.qosArmed {
				rc.sys.Prefetchers[meta.DestCore].HintClass(rc.sys.Sim, tlp.LineAddr, meta.QoS)
			} else {
				rc.sys.Prefetchers[meta.DestCore].Hint(rc.sys.Sim, tlp.LineAddr)
			}
		}
	default:
		lat = rc.writeLine(now, tlp.LineAddr, meta.QoS)
	}
	if o := rc.sys.obs; o.Tracing() {
		o.LineEvent(obs.EvPlace, now, tlp.LineAddr, meta.DestCore, steer.String(), lat)
	}
	return lat
}

// writeLine performs the LLC-directed placement of one inbound line:
// under the class's DDIO way quota when QoS is armed, the host-wide
// mask otherwise (the exact legacy call).
func (rc *rootComplex) writeLine(now sim.Time, lineAddr uint64, class uint8) sim.Duration {
	if rc.sys.qosArmed {
		return rc.sys.Hier.PCIeWriteClass(now, mem.LineAddr(lineAddr), int(class))
	}
	return rc.sys.Hier.PCIeWrite(now, mem.LineAddr(lineAddr))
}

// DMARead implements nic.Sink (TX egress path).
func (rc *rootComplex) DMARead(now sim.Time, line uint64) sim.Duration {
	if rc.sys.IOMMU != nil && !rc.sys.IOMMU.CheckRead(line) {
		return 0
	}
	return rc.sys.Hier.PCIeRead(now, mem.LineAddr(line))
}

// prefetchAdapter bridges the controller-side prefetcher to the
// hierarchy's typed API and fans each prefetch outcome out to hooks
// registered through System.OnPrefetch. It also exposes MLC load so
// the adaptive prefetcher variant can regulate itself.
type prefetchAdapter struct{ sys *System }

func (a prefetchAdapter) PrefetchToMLC(now sim.Time, coreID int, line uint64) bool {
	filled := a.sys.Hier.PrefetchToMLC(now, coreID, mem.LineAddr(line))
	for _, fn := range a.sys.prefetchHooks {
		fn(coreID, line, filled)
	}
	return filled
}

func (a prefetchAdapter) MLCLoadFraction(coreID int) float64 {
	return a.sys.Hier.MLCLoadFraction(coreID)
}

// System is a fully wired simulated server: hierarchy, NIC, IDIO
// components, and per-core software stacks.
type System struct {
	Cfg Config

	Sim  *sim.Simulator
	Hier *hier.Hierarchy
	// NIC is port 0 — the only port on single-port systems. Multi-port
	// systems address other ports via Port(i)/Ports().
	NIC         *nic.NIC
	ports       []*nic.NIC
	FlowDir     *nic.FlowDirector
	Classifier  *idiocore.Classifier
	Controller  *idiocore.Controller
	Prefetchers []*idiocore.Prefetcher
	Cores       []*cpu.Core
	// WayTuner is non-nil when the dynamic DDIO-way baseline is
	// configured.
	WayTuner *idiocore.WayTuner
	// IOMMU is non-nil when DMA address validation is enabled.
	IOMMU *pcie.IOMMU
	// Faults is non-nil when Config.Faults enables the deterministic
	// fault-injection layer; its Stats() reports what was perturbed.
	Faults *fault.Injector

	// PktPool recycles the *pkt.Packet objects (and their frame
	// storage) flowing through this host: traffic generators targeting
	// any port discover it via the PacketPooler probe, packets return
	// to it when their RX ring slot is freed (or when a drop path
	// kills them), and a Cluster draws its fabric request/response
	// packets from it too. One pool per host gives one accounting
	// point: after a drained run, Outstanding() must be zero.
	PktPool *pkt.Pool

	// Occupancy gauges, populated when Config.OccupancySampling > 0.
	LLCOcc   *stats.LevelSeries
	LLCIOOcc *stats.LevelSeries
	MLCOcc   []*stats.LevelSeries

	rc      *rootComplex
	layout  *mem.Layout
	started bool
	// qosArmed mirrors Cfg.QoS != nil; checked on the DMA hot path so
	// the disarmed placement calls are exactly the legacy ones.
	qosArmed bool

	obs           *obs.Observer
	prefetchHooks []func(core int, line uint64, filled bool)
}

// NewSystem wires a system from the configuration. It panics on an
// invalid configuration (the historical behaviour); NewSystemE is the
// error-returning variant for configurations from untrusted input.
func NewSystem(cfg Config) *System {
	s, err := NewSystemE(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSystemE validates the configuration and wires a system,
// returning *ConfigError values (joined) instead of panicking when
// the configuration is invalid.
func NewSystemE(cfg Config) (*System, error) {
	return NewHostE(sim.New(), cfg)
}

// NewHostE wires a system as one host of a multi-host topology: it
// shares the caller's simulator instead of creating its own, so a DUT
// server and the network fabric connecting it to client hosts advance
// on one event queue (see Cluster). NewSystemE is the single-host
// special case.
func NewHostE(sm *sim.Simulator, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{Cfg: cfg, Sim: sm}
	s.obs = obs.New(cfg.Obs)
	if cfg.Watchdog != nil {
		s.Sim.SetWatchdog(*cfg.Watchdog)
	}
	s.Hier = hier.New(cfg.Hier)
	s.Hier.SetObserver(s.obs)
	s.Classifier = idiocore.NewClassifier(cfg.Classifier)
	s.FlowDir = nic.NewFlowDirector(cfg.Hier.NumCores)
	s.Controller = idiocore.NewController(cfg.Controller, cfg.Policy, s.Hier.MLCWritebacks)
	for i := 0; i < cfg.Hier.NumCores; i++ {
		s.Prefetchers = append(s.Prefetchers,
			idiocore.NewPrefetcher(cfg.Prefetcher, i, prefetchAdapter{s}))
	}
	if cfg.DynamicDDIOWays != nil {
		s.WayTuner = idiocore.NewWayTuner(*cfg.DynamicDDIOWays, s.Hier.LLCWBIOCount, s.Hier.SetDDIOWays)
	}
	s.rc = &rootComplex{sys: s}
	s.layout = mem.NewLayout(1 << 30) // DMA regions above 1 GB
	// The fault injector interposes on the NIC→root-complex PCIe path
	// so TLP perturbations happen before IOMMU checks and steering,
	// exactly where a real poisoned/corrupted TLP would bite.
	var sink nic.Sink = s.rc
	if cfg.Faults.Enabled() {
		s.Faults = fault.New(*cfg.Faults)
		sink = s.Faults.WrapSink(s.rc)
	}
	nPorts := cfg.NumPorts
	if nPorts <= 0 {
		nPorts = 1
	}
	s.PktPool = pkt.NewPool(0)
	for p := 0; p < nPorts; p++ {
		port := nic.New(cfg.NIC, s.layout, sink, s.Classifier, s.FlowDir)
		port.SetObserver(s.obs)
		port.SetPacketPool(s.PktPool)
		s.ports = append(s.ports, port)
	}
	s.NIC = s.ports[0]
	if s.Faults != nil {
		for _, port := range s.ports {
			s.Faults.AttachPort(port)
		}
		s.Faults.AttachDRAM(s.Hier.DRAM())
		s.Faults.AttachHier(s.Hier)
	}
	s.Cores = make([]*cpu.Core, cfg.Hier.NumCores)
	if cfg.EnforceInvalidatable {
		s.Hier.EnforceInvalidatable(true)
	}
	if cfg.EnableIOMMU {
		s.IOMMU = pcie.NewIOMMU()
	}
	// Mark all ring buffers and descriptors Invalidatable (the kernel
	// allocated them for the NF, Sec. V-D) and map them through the
	// IOMMU when enabled.
	for _, port := range s.ports {
		for q := 0; q < cfg.NIC.NumQueues; q++ {
			for _, slot := range port.Ring(q).Slots() {
				s.Hier.RegisterInvalidatable(slot.Buf)
				s.Hier.RegisterInvalidatable(slot.Desc)
				if s.IOMMU != nil {
					s.IOMMU.Map(slot.Buf)
					s.IOMMU.Map(slot.Desc)
				}
			}
			if s.IOMMU != nil {
				for _, tx := range port.TXRing(q).Slots() {
					s.IOMMU.Map(tx.Desc)
				}
			}
		}
	}
	if q := cfg.QoS; q != nil {
		qmap, err := q.BuildMap()
		if err != nil {
			return nil, err
		}
		s.qosArmed = true
		for _, port := range s.ports {
			port.SetQoSMap(qmap)
		}
		var direct [qos.NumClasses]bool
		var every [qos.NumClasses]int
		for ci := range q.Classes {
			p := &q.Classes[ci]
			if p.LLCWays > 0 {
				s.Hier.SetClassDDIOWays(ci, p.LLCWays)
			}
			direct[ci] = p.DirectDRAM
			every[ci] = p.PrefetchEvery
		}
		s.Controller.SetQoSPolicy(direct)
		for _, pf := range s.Prefetchers {
			pf.SetClassEvery(every)
		}
	}
	s.registerMetrics()
	return s, nil
}

// ClassRx aggregates the per-class admitted packet/byte counters
// across every NIC port (all zero unless Config.QoS armed the class
// map).
func (s *System) ClassRx() (pkts, bytes [qos.NumClasses]uint64) {
	for _, port := range s.ports {
		pp, pb := port.ClassRx()
		for c := 0; c < qos.NumClasses; c++ {
			pkts[c] += pp[c]
			bytes[c] += pb[c]
		}
	}
	return pkts, bytes
}

// registerMetrics populates the observability registry with every
// counter WriteStats reports (same names) plus component-level gauges.
// All entries are closures over live component state, so a registry
// snapshot at any simulated time reflects that instant.
func (s *System) registerMetrics() {
	reg := s.obs.Registry()
	reg.GaugeFunc("sim.now_us", func() float64 { return s.Sim.Now().Microseconds() })
	nic.RegisterMetrics(reg, "nic.", func() nic.Stats {
		agg := s.ports[0].Stats()
		for _, port := range s.ports[1:] {
			ps := port.Stats()
			agg.RxPackets += ps.RxPackets
			agg.RxBytes += ps.RxBytes
			agg.RxDrops += ps.RxDrops
			agg.TxPackets += ps.TxPackets
			agg.DMAWrites += ps.DMAWrites
			agg.DMAReads += ps.DMAReads
			agg.PoolDrops += ps.PoolDrops
			agg.LinkDownDrops += ps.LinkDownDrops
			agg.MisSteers += ps.MisSteers
			agg.InvariantViolations += ps.InvariantViolations
		}
		return agg
	})
	if s.Cfg.NIC.AdmissionWatermark > 0 {
		reg.CounterFunc("nic.admission_drops", func() uint64 {
			var n uint64
			for _, port := range s.ports {
				n += port.Stats().AdmissionDrops
			}
			return n
		})
	}
	// WriteStats always reports the IOMMU keys, faulted or not, so the
	// registry mirrors that even when address validation is disabled.
	if u := s.IOMMU; u != nil {
		u.RegisterMetrics(reg, "iommu.")
	} else {
		reg.CounterFunc("iommu.read_faults", func() uint64 { return 0 })
		reg.CounterFunc("iommu.write_faults", func() uint64 { return 0 })
	}
	// Per-class keys exist only when QoS is armed, so disarmed runs
	// keep the historical registry (and WriteJSON document) exactly.
	if s.Cfg.QoS != nil {
		for c := 0; c < qos.NumClasses; c++ {
			c := c
			reg.CounterFunc(fmt.Sprintf("qos.%v.rx_packets", qos.Class(c)), func() uint64 {
				pkts, _ := s.ClassRx()
				return pkts[c]
			})
			reg.CounterFunc(fmt.Sprintf("qos.%v.rx_bytes", qos.Class(c)), func() uint64 {
				_, bytes := s.ClassRx()
				return bytes[c]
			})
		}
		reg.CounterFunc("qos.direct_dram", func() uint64 { return s.Controller.QoSDRAMCount })
		reg.CounterFunc("qos.prefetch_suppressed", func() uint64 {
			var n uint64
			for _, p := range s.Prefetchers {
				n += p.ClassSuppressed
			}
			return n
		})
	}
	s.Controller.RegisterMetrics(reg, "ctrl.")
	s.Classifier.RegisterMetrics(reg, "classifier.")
	s.Hier.RegisterMetrics(reg, "hier.")
	s.Hier.DRAM().RegisterMetrics(reg, "dram.")
	for i, p := range s.Prefetchers {
		p.RegisterMetrics(reg, fmt.Sprintf("prefetch.core%d.", i))
	}
	if s.Faults != nil {
		reg.CounterFunc("fault.tlps_corrupted", func() uint64 { return s.Faults.Stats().TLPsCorrupted })
		reg.CounterFunc("fault.tlps_poisoned", func() uint64 { return s.Faults.Stats().TLPsPoisoned })
		reg.CounterFunc("fault.link_flaps", func() uint64 { return s.Faults.Stats().LinkFlaps })
		reg.CounterFunc("fault.dma_stalls", func() uint64 { return s.Faults.Stats().DMAStalls })
		reg.CounterFunc("fault.mbufs_leaked", func() uint64 { return s.Faults.Stats().MbufsLeaked })
		reg.CounterFunc("fault.dram_spikes", func() uint64 { return s.Faults.Stats().DRAMSpikes })
		reg.CounterFunc("fault.snoop_thrashes", func() uint64 { return s.Faults.Stats().SnoopThrashes })
		reg.CounterFunc("fault.dir_evictions", func() uint64 { return s.Faults.Stats().DirEvictions })
		reg.CounterFunc("fault.core_stalls", func() uint64 { return s.Faults.Stats().CoreStalls })
		reg.CounterFunc("fault.fabric_flaps", func() uint64 { return s.Faults.Stats().FabricFlaps })
		reg.CounterFunc("fault.fabric_degrades", func() uint64 { return s.Faults.Stats().FabricDegrades })
		if len(s.Cfg.Faults.Timeline) > 0 {
			reg.CounterFunc("fault.timeline_phases", func() uint64 { return s.Faults.Stats().TimelinePhases })
		}
	}
	// Cores are installed after construction (AddNF), so the per-core
	// closures tolerate nil slots and report zero until an app exists.
	for i := range s.Cores {
		i := i
		core := func() *cpu.Core { return s.Cores[i] }
		reg.CounterFunc(fmt.Sprintf("core%d.processed", i), func() uint64 {
			if c := core(); c != nil {
				return c.Processed
			}
			return 0
		})
		reg.GaugeFunc(fmt.Sprintf("core%d.p50_us", i), func() float64 {
			if c := core(); c != nil && c.Latencies.Count() > 0 {
				return c.Latencies.P50().Microseconds()
			}
			return 0
		})
		reg.GaugeFunc(fmt.Sprintf("core%d.p99_us", i), func() float64 {
			if c := core(); c != nil && c.Latencies.Count() > 0 {
				return c.Latencies.P99().Microseconds()
			}
			return 0
		})
		reg.GaugeFunc(fmt.Sprintf("core%d.busy_us", i), func() float64 {
			if c := core(); c != nil {
				return c.BusyTime.Microseconds()
			}
			return 0
		})
	}
}

// Observe exposes the system's observability layer: its metric
// registry (always live), the structured tracer (enabled via
// Config.Obs.TraceSampleN), and the periodic metric time series
// (enabled via Config.Obs.MetricsInterval). Attach a trace sink with
// Observe().SetSink before Start.
func (s *System) Observe() *obs.Observer { return s.obs }

// OnCompletion registers an observer for RX descriptor-visible events
// on one port's queue. Observers accumulate and fire in registration
// order; the interrupt-mode driver's handler registers through the
// same path.
func (s *System) OnCompletion(port, queue int, fn func(*sim.Simulator)) {
	s.ports[port].OnCompletion(queue, fn)
}

// OnInvariant registers an observer for NIC model-invariant
// violations on every port. Observers accumulate.
func (s *System) OnInvariant(fn func(error)) {
	for _, port := range s.ports {
		port.OnInvariant(fn)
	}
}

// OnPrefetch registers an observer for every MLC prefetch attempt
// (filled reports whether the line was actually installed in the
// destination core's MLC). Observers accumulate; registration must
// happen before the run for complete coverage.
func (s *System) OnPrefetch(fn func(core int, line uint64, filled bool)) {
	s.prefetchHooks = append(s.prefetchHooks, fn)
}

// Ports returns every NIC port.
func (s *System) Ports() []*nic.NIC { return s.ports }

// Port returns port i.
func (s *System) Port(i int) *nic.NIC { return s.ports[i] }

// DefaultFlow returns a distinct UDP flow for each core, pre-routed to
// it via an externally-programmed Flow Director rule when installed
// through AddNF.
func (s *System) DefaultFlow(coreID int) traffic.Flow {
	return traffic.Flow{
		Src: pkt.IPv4{10, 0, 1, byte(coreID + 1)}, Dst: pkt.IPv4{10, 0, 0, 1},
		SrcPort: uint16(5000 + coreID), DstPort: uint16(9000 + coreID),
		FrameLen: pkt.MTUFrameLen,
	}
}

// AddNF binds a network-function app to a core and pins its flow to
// that core with an EP Flow Director rule. The core's software stack
// self-invalidates buffers when the active policy says so.
func (s *System) AddNF(coreID int, app cpu.App, flow traffic.Flow) *cpu.Core {
	if s.Cores[coreID] != nil {
		panic(fmt.Sprintf("idio: core %d already has an app", coreID))
	}
	s.FlowDir.AddEPRule(flow.Tuple(), coreID)
	coreCfg := s.Cfg.CPU
	coreCfg.SelfInvalidate = s.Cfg.Policy.SelfInvalidate
	c := cpu.NewCore(coreID, coreCfg, s.Cfg.Hier.Clock, s.Hier, s.Ports(), app)
	c.Env().Obs = s.obs
	s.Cores[coreID] = c
	if s.Faults != nil {
		s.Faults.AttachCore(c)
	}
	return c
}

// AllocRegion carves an application-owned memory region (e.g. for
// CopyNF destinations or the LLC antagonist buffer).
func (s *System) AllocRegion(bytes uint64) mem.Region {
	return s.layout.Alloc(bytes, mem.LineBytes)
}

// NewMbufPool carves a packet-buffer pool for re-allocate-mode (M2)
// rings out of the system's address space. Buffers are DMA-mapped
// through the IOMMU (they are RX targets) and registered as
// Invalidatable (the software stack may self-invalidate them).
func (s *System) NewMbufPool(n int) *nic.MbufPool {
	p := nic.NewMbufPool(n, s.layout)
	for _, b := range p.Buffers() {
		if s.IOMMU != nil {
			s.IOMMU.Map(b)
		}
		s.Hier.RegisterInvalidatable(b)
	}
	if s.Faults != nil {
		s.Faults.AttachPool(p)
	}
	return p
}

// Start launches every installed core's polling loop and the IDIO
// controller's control plane. Calling it more than once is a no-op.
func (s *System) Start() {
	if s.started {
		return
	}
	s.started = true
	for _, c := range s.Cores {
		if c != nil {
			c.Start(s.Sim)
		}
	}
	s.Controller.Start(s.Sim)
	if s.WayTuner != nil {
		s.WayTuner.Start(s.Sim)
	}
	if s.Faults != nil {
		s.Faults.Start(s.Sim)
	}
	if iv := s.obs.MetricsInterval(); iv > 0 {
		s.Sim.Every(0, iv, func(sm *sim.Simulator) {
			s.obs.SampleMetrics(sm.Now())
		})
	}
	if p := s.Cfg.OccupancySampling; p > 0 {
		s.LLCOcc = stats.NewLevelSeries()
		s.LLCIOOcc = stats.NewLevelSeries()
		s.MLCOcc = make([]*stats.LevelSeries, s.Cfg.Hier.NumCores)
		for i := range s.MLCOcc {
			s.MLCOcc[i] = stats.NewLevelSeries()
		}
		s.Sim.Every(0, p, func(sm *sim.Simulator) {
			s.LLCOcc.Record(sm.Now(), float64(s.Hier.LLCOccupancy()))
			s.LLCIOOcc.Record(sm.Now(), float64(s.Hier.LLCOccupancyIO()))
			for i := range s.MLCOcc {
				s.MLCOcc[i].Record(sm.Now(), float64(s.Hier.MLCOccupancy(i)))
			}
		})
	}
}

// Run starts the system (if not already started) and executes until
// the horizon, returning collected results.
func (s *System) Run(horizon sim.Duration) Results {
	s.Start()
	s.Sim.RunUntil(sim.Time(horizon))
	return s.Collect()
}

// RunUntilIdle executes until the event queue drains of packet work,
// bounded by the horizon. Useful for "process one burst to completion"
// experiments.
func (s *System) RunUntilIdle(horizon sim.Duration) Results {
	s.Start()
	// The polling loops never terminate, so run in slices and stop
	// when no core has pending ring work.
	step := 100 * sim.Microsecond
	for t := sim.Duration(0); t < horizon; t += step {
		s.Sim.RunUntil(sim.Time(t + step))
		// A tripped watchdog stops the clock; keeping on slicing would
		// spin through the horizon doing nothing.
		if s.Sim.Err() != nil || s.idle() {
			break
		}
	}
	return s.Collect()
}

// Err reports a structured abort (watchdog trip) from the last run,
// or nil after a clean run.
func (s *System) Err() error { return s.Sim.Err() }

func (s *System) idle() bool {
	for _, port := range s.ports {
		for q := 0; q < s.Cfg.NIC.NumQueues; q++ {
			if port.Ring(q).Occupancy() != 0 {
				return false
			}
		}
	}
	return true
}

// FirstDMAAt returns when the first inbound DMA landed (DMA-phase
// start), valid once traffic has flowed.
func (s *System) FirstDMAAt() (sim.Time, bool) { return s.rc.firstDMAAt, s.rc.sawDMA }
